package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	Register(&Analyzer{
		Name: "maporder",
		Doc: "flags map iterations whose body lets Go's randomized iteration order escape — " +
			"appending to a slice that is never sorted afterwards, writing to an io.Writer, " +
			"or sending on a channel — the source-level shadow of the byte-identical-report " +
			"determinism contract",
		Run: runMaporder,
	})
}

// writerMethods are the methods whose call on an io.Writer-ish value emits
// output in iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMaporder(p *Pass) {
	eachFuncBody(p.Files, func(body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(p.Info, rs) {
				return
			}
			checkMapRange(p, body, rs)
		})
	})
}

// isMapRange reports whether rs iterates a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body for order leaks. enclosing is
// the innermost function body containing rs, used to look for a sort call
// dominating the loop's append targets.
func checkMapRange(p *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt) {
	// appends maps each appended-to object to the first append position.
	appends := map[types.Object]token.Pos{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			p.Reportf(s.Pos(), "send on a channel during map iteration: map order becomes message order; iterate sorted keys instead")
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || i >= len(s.Lhs) {
					continue
				}
				id := rootIdent(s.Lhs[i])
				if id == nil {
					continue
				}
				obj := objOf(p.Info, id)
				if obj == nil || obj.Name() == "_" {
					continue
				}
				// A slice declared inside the loop body is rebuilt every
				// iteration; order cannot accumulate across iterations.
				if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
					continue
				}
				if _, seen := appends[obj]; !seen {
					appends[obj] = call.Pos()
				}
			}
		case *ast.CallExpr:
			checkOrderedOutput(p, s)
			callee := staticCallee(p.Info, s)
			sum := p.Prog.SummaryOf(callee)
			if sum == nil {
				return true
			}
			if sum.EmitsWriter {
				p.Reportf(s.Pos(),
					"call to %s during map iteration emits output (transitively writes to an io.Writer) in map order; iterate sorted keys instead",
					callee.Name())
			}
			if sum.EmitsChan {
				p.Reportf(s.Pos(),
					"call to %s during map iteration sends on a channel (transitively): map order becomes message order; iterate sorted keys instead",
					callee.Name())
			}
			// A callee that appends through a pointer parameter accumulates
			// into caller storage just like an in-loop append would.
			args := callArgs(p.Info, s)
			for i, arg := range args {
				if !sum.AppendsVia[argIndex(callee, i)] {
					continue
				}
				id := rootIdent(stripAddr(arg))
				if id == nil {
					continue
				}
				obj := objOf(p.Info, id)
				if obj == nil || obj.Name() == "_" {
					continue
				}
				if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
					continue // loop-local target: rebuilt every iteration
				}
				if _, seen := appends[obj]; !seen {
					appends[obj] = s.Pos()
				}
			}
		}
		return true
	})
	for obj, pos := range appends {
		if !sortedAfter(p, enclosing, rs, obj) {
			p.Reportf(pos,
				"append to %q during map iteration with no later sort in this function: map order leaks into the slice; sort it after the loop or iterate sorted keys",
				obj.Name())
		}
	}
}

// checkOrderedOutput flags calls that emit output in iteration order:
// fmt.Fprint*/fmt.Print* and Write* methods on io.Writer implementations.
func checkOrderedOutput(p *Pass, call *ast.CallExpr) {
	if pkg, name, ok := pkgFuncCall(p.Info, call); ok {
		if pkg == "fmt" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print")) {
			p.Reportf(call.Pos(), "fmt.%s during map iteration writes output in map order; iterate sorted keys instead", name)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !writerMethods[sel.Sel.Name] {
		return
	}
	if implementsWriter(p.Info.TypeOf(sel.X)) {
		p.Reportf(call.Pos(), "%s on an io.Writer during map iteration writes output in map order; iterate sorted keys instead", sel.Sel.Name)
	}
}

// sortedAfter reports whether a sort call mentioning obj appears in
// enclosing after rs ends — the keys-collect-then-sort idiom that makes an
// in-loop append deterministic.
func sortedAfter(p *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg, name, ok := pkgFuncCall(p.Info, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		if pkg == "sort" && !sortNames[name] {
			return true
		}
		if pkg == "slices" && !strings.HasPrefix(name, "Sort") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && objOf(p.Info, id) == obj {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}

// sortNames are the sort-package entry points accepted as dominating sorts.
var sortNames = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := objOf(info, id).(*types.Builtin)
	return isBuiltin
}

// eachFuncBody visits every function body — declarations and literals.
func eachFuncBody(files []*ast.File, fn func(*ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}

// inspectShallow walks body without descending into nested function
// literals (each literal gets its own eachFuncBody visit).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

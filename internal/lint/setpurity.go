package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "setpurity",
		Doc: "enforces that internal/timerange set algebra is non-mutating: a function " +
			"taking a Set must not write through a Set parameter, and a method that " +
			"returns a Set must not write through its receiver — ops return fresh sets, " +
			"so the quick-check algebra laws quantify over real behavior",
		Run: runSetpurity,
	})
}

func runSetpurity(p *Pass) {
	if p.RelPath != "internal/timerange" {
		return
	}
	setObj := p.Pkg.Scope().Lookup("Set")
	if _, ok := setObj.(*types.TypeName); !ok {
		return
	}
	mutators := receiverMutators(p, setObj)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			protected := protectedSets(p, setObj, fd)
			if len(protected) == 0 {
				continue
			}
			checkPurity(p, fd, protected, mutators)
		}
	}
}

// isSetBased reports whether t is Set, *Set, []Set, or []*Set (the variadic
// ...*Set parameter arrives as a slice).
func isSetBased(setObj types.Object, t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			return u.Obj() == setObj
		default:
			return false
		}
	}
}

// protectedSets returns the Set-typed objects fd must not mutate: every
// Set parameter, plus the receiver when fd also returns a Set (a pure op —
// explicit builder methods like Add return nothing and may mutate).
func protectedSets(p *Pass, setObj types.Object, fd *ast.FuncDecl) map[types.Object]string {
	protected := map[types.Object]string{}
	addField := func(field *ast.Field, role string) {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj != nil && name.Name != "_" && isSetBased(setObj, obj.Type()) {
				protected[obj] = role
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			addField(field, "parameter")
		}
	}
	if fd.Recv != nil && fd.Type.Results != nil {
		returnsSet := false
		for _, res := range fd.Type.Results.List {
			if t := p.Info.TypeOf(res.Type); t != nil && isSetBased(setObj, t) {
				returnsSet = true
			}
		}
		if returnsSet {
			for _, field := range fd.Recv.List {
				addField(field, "receiver")
			}
		}
	}
	return protected
}

// receiverMutators returns the names of Set methods that write through
// their receiver — calling one of these on a protected set is as impure as
// writing to it directly.
func receiverMutators(p *Pass, setObj types.Object) map[string]bool {
	out := map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			field := fd.Recv.List[0]
			if len(field.Names) == 0 {
				continue
			}
			recvObj := p.Info.Defs[field.Names[0]]
			if recvObj == nil || !isSetBased(setObj, recvObj.Type()) {
				continue
			}
			if writesThrough(p, fd.Body, map[types.Object]string{recvObj: "receiver"}, nil) {
				out[fd.Name.Name] = true
			}
		}
	}
	return out
}

// writesThrough walks body looking for writes through any protected object
// (s.ranges[i] = x, o.ranges = append(...), s.ranges[i].End++). When report
// is non-nil each finding is reported; either way it returns whether any
// write was found.
func writesThrough(p *Pass, body *ast.BlockStmt, protected map[types.Object]string, report func(pos ast.Node, obj types.Object, role string)) bool {
	found := false
	flag := func(n ast.Node, e ast.Expr) {
		// A plain rebind of the identifier itself (o = nil) copies the
		// pointer and mutates nothing; only writes through a selector or
		// index reach the caller's set.
		if _, plain := e.(*ast.Ident); plain {
			return
		}
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := objOf(p.Info, root)
		role, ok := protected[obj]
		if !ok {
			return
		}
		found = true
		if report != nil {
			report(n, obj, role)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				flag(s, lhs)
			}
		case *ast.IncDecStmt:
			flag(s, s.X)
		}
		return true
	})
	return found
}

// checkPurity reports every mutation of a protected set in fd: direct
// writes and calls to receiver-mutating methods.
func checkPurity(p *Pass, fd *ast.FuncDecl, protected map[types.Object]string, mutators map[string]bool) {
	writesThrough(p, fd.Body, protected, func(n ast.Node, obj types.Object, role string) {
		p.Reportf(n.Pos(),
			"%s mutates Set %s %q in place; Set ops must build and return fresh sets",
			fd.Name.Name, role, obj.Name())
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !mutators[sel.Sel.Name] {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil {
			return true
		}
		if role, ok := protected[objOf(p.Info, root)]; ok {
			p.Reportf(call.Pos(),
				"%s calls mutating method %s on Set %s %q; Set ops must build and return fresh sets",
				fd.Name.Name, sel.Sel.Name, role, root.Name)
		}
		return true
	})
}

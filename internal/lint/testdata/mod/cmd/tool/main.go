// Command tool is a lint fixture for the cmd/ exemptions: wall-clock reads
// are fine in a front-end, but a wall-clock-seeded generator still defeats
// reproducibility and globalrand must flag it.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	start := time.Now() // wallclock: clean (cmd/ is exempt)
	bad := rand.New(rand.NewSource(time.Now().UnixNano()))
	good := rand.New(rand.NewSource(7))
	fmt.Println(bad.Intn(6), good.Intn(6), time.Since(start))
}

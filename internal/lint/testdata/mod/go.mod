module fix.example/mod

go 1.22

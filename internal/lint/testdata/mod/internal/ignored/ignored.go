// Package ignored is a lint fixture for suppression comments: a used
// ignore silences its diagnostic, a reason-less ignore is badignore, and an
// ignore matching nothing is unusedignore.
package ignored

import "math/rand"

// Jitter is legitimately nondeterministic and documents why
// (suppressed: no globalrand finding here).
func Jitter() int {
	//tdatlint:ignore globalrand fixture models sanctioned jitter with a documented waiver
	return rand.Intn(3)
}

// Roll carries a reason-less ignore (badignore finding) that therefore
// suppresses nothing (globalrand finding too).
func Roll() int {
	//tdatlint:ignore globalrand
	return rand.Intn(3)
}

// Fixed is deterministic; its stale ignore must be reported
// (unusedignore finding).
func Fixed(seed int64) int {
	//tdatlint:ignore globalrand stale waiver left behind after the fix
	return rand.New(rand.NewSource(seed)).Intn(3)
}

// Mixed waives two codes on one line; only globalrand fires here, so the
// wallclock half must surface as its own unusedignore — suppression
// accounting is per-code, not per-line.
func Mixed() int {
	//tdatlint:ignore globalrand,wallclock one waived draw, and a stale clock waiver
	return rand.Intn(9)
}

// Package packet is the fixture stand-in for the zero-copy decoder: the
// summary engine must learn from DecodeInto's body that the frame flows into
// the packet's fields (a ToParams flow), so aliasretain can follow a record
// buffer through it without any special-casing of the name.
package packet

import "errors"

// Packet is a decoded frame; Payload views the frame it was decoded from.
type Packet struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// ErrShort rejects frames shorter than the fixed 4-byte header.
var ErrShort = errors.New("packet fixture: frame too short")

// DecodeInto parses frame into p. Payload aliases frame — whoever owns the
// frame owns the view.
func DecodeInto(frame []byte, p *Packet) error {
	if len(frame) < 4 {
		return ErrShort
	}
	p.SrcPort = uint16(frame[0])<<8 | uint16(frame[1])
	p.DstPort = uint16(frame[2])<<8 | uint16(frame[3])
	p.Payload = frame[4:]
	return nil
}

// Decode is the allocating variant: the returned packet owns its payload.
func Decode(frame []byte) (Packet, error) {
	var p Packet
	if err := DecodeInto(frame, &p); err != nil {
		return Packet{}, err
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return p, nil
}

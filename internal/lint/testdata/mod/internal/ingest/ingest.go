// Package ingest is the aliasretain fixture: every way a caller-owned
// record buffer can illegally outlive its read sits next to the sanctioned
// copy-what-you-keep idioms that must stay clean.
package ingest

import (
	"fix.example/mod/internal/packet"
	"fix.example/mod/internal/pcapio"
)

// Retain accumulates the reused record buffer across iterations
// (aliasretain: finding — every kept element goes stale on the next read).
func Retain(r *pcapio.Reader) [][]byte {
	var kept [][]byte
	_ = r.EachInto(func(rec pcapio.Record) error {
		kept = append(kept, rec.Data)
		return nil
	})
	return kept
}

// lastPayload is package state; anything stored here outlives every read.
var lastPayload []byte

// RetainView relays the record through packet.DecodeInto — the summary
// engine knows the frame flows into pkt — and then parks the view in a
// package variable (aliasretain: finding on the cross-function chain).
func RetainView(r *pcapio.Reader) error {
	var pkt packet.Packet
	return r.EachInto(func(rec pcapio.Record) error {
		if err := packet.DecodeInto(rec.Data, &pkt); err != nil {
			return err
		}
		lastPayload = pkt.Payload
		return nil
	})
}

// stashed holds whatever stash was last handed.
var stashed []byte

// stash retains its argument in package state (summary: the parameter
// escapes).
func stash(b []byte) { stashed = b }

// RetainViaHelper hands the record buffer to a helper whose summary says it
// retains it (aliasretain: finding at the call site).
func RetainViaHelper(r *pcapio.Reader) error {
	return r.EachInto(func(rec pcapio.Record) error {
		stash(rec.Data)
		return nil
	})
}

// Publish sends the reused buffer on a channel; the receiver races the next
// ReadInto (aliasretain: finding).
func Publish(r *pcapio.Reader, ch chan<- []byte) error {
	var rec pcapio.Record
	for {
		if err := r.ReadInto(&rec); err != nil {
			if err == pcapio.ErrEOF {
				return nil
			}
			return err
		}
		ch <- rec.Data
	}
}

// CopyKeep copies what it keeps — the sanctioned ownership transfer
// (aliasretain: clean).
func CopyKeep(r *pcapio.Reader) ([][]byte, error) {
	var kept [][]byte
	err := r.EachInto(func(rec pcapio.Record) error {
		kept = append(kept, append([]byte(nil), rec.Data...))
		return nil
	})
	return kept, err
}

// Total only reads scalars out of the record (aliasretain: clean).
func Total(r *pcapio.Reader) (int64, error) {
	var total int64
	err := r.EachInto(func(rec pcapio.Record) error {
		total += int64(len(rec.Data)) + rec.TimeMicros
		return nil
	})
	return total, err
}

// DecodeRelay reuses one packet across iterations, the pipeline idiom: the
// DecodeInto flow into a variable outside the callback is an overwrite-style
// relay, not a retention (aliasretain: clean).
func DecodeRelay(r *pcapio.Reader) (int, error) {
	var pkt packet.Packet
	ports := 0
	err := r.EachInto(func(rec pcapio.Record) error {
		if err := packet.DecodeInto(rec.Data, &pkt); err != nil {
			return err
		}
		ports += int(pkt.SrcPort)
		return nil
	})
	return ports, err
}

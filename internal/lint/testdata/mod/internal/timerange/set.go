// Package timerange is a lint fixture mirroring the real set algebra:
// setpurity must flag ops that mutate their receiver or a Set argument and
// accept the explicit builder plus fresh-set ops.
package timerange

// Range is one fixture interval.
type Range struct{ Start, End int64 }

// Set is the fixture set-of-ranges.
type Set struct{ ranges []Range }

// Add is the explicit builder: it mutates its receiver and returns nothing,
// which setpurity permits.
func (s *Set) Add(r Range) {
	s.ranges = append(s.ranges, r)
}

// Union is a pure op done right: it builds a fresh set (setpurity: clean).
func (s *Set) Union(o *Set) *Set {
	out := &Set{ranges: make([]Range, 0, len(s.ranges)+len(o.ranges))}
	out.ranges = append(out.ranges, s.ranges...)
	out.ranges = append(out.ranges, o.ranges...)
	return out
}

// Absorb mutates its receiver while claiming to be a pure op
// (setpurity: finding).
func (s *Set) Absorb(o *Set) *Set {
	s.ranges = append(s.ranges, o.ranges...)
	return s
}

// Clip mutates its Set argument in place (setpurity: finding).
func Clip(o *Set, max int64) {
	for i := range o.ranges {
		if o.ranges[i].End > max {
			o.ranges[i].End = max
		}
	}
}

// Merge calls the mutating builder on its argument (setpurity: finding).
func Merge(dst *Set, r Range) {
	dst.Add(r)
}

// Package analyzer is a lint fixture standing in for a T-DAT analyzer
// package: wallclock, maporder, and globalrand must all fire here, and
// their clean idioms must not.
package analyzer

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock in analyzer code (wallclock: 2 findings).
func Stamp() (time.Time, time.Duration) {
	start := time.Now()
	return start, time.Since(start)
}

// Elapsed only mentions time types, never the clock (wallclock: clean).
func Elapsed(d time.Duration) float64 { return d.Seconds() }

// Draw uses the process-global source (globalrand: finding).
func Draw() int { return rand.Intn(6) }

// DrawSeeded threads an explicit seed (globalrand: clean).
func DrawSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// Render writes during map iteration (maporder: finding).
func Render(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keys appends during map iteration and never sorts (maporder: finding).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys appends then sorts after the loop (maporder: clean).
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Publish sends map entries into a channel (maporder: finding).
func Publish(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v
	}
}

// Invert builds a map from a map; no order leaks (maporder: clean).
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
		scratch := []string{}
		scratch = append(scratch, k) // per-iteration slice: clean
		_ = scratch
	}
	return out
}

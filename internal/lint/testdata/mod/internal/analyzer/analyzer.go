// Package analyzer is a lint fixture standing in for a T-DAT analyzer
// package: wallclock, maporder, and globalrand must all fire here, and
// their clean idioms must not.
package analyzer

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock in analyzer code (wallclock: 2 findings).
func Stamp() (time.Time, time.Duration) {
	start := time.Now()
	return start, time.Since(start)
}

// Elapsed only mentions time types, never the clock (wallclock: clean).
func Elapsed(d time.Duration) float64 { return d.Seconds() }

// Draw uses the process-global source (globalrand: finding).
func Draw() int { return rand.Intn(6) }

// DrawSeeded threads an explicit seed (globalrand: clean).
func DrawSeeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// Render writes during map iteration (maporder: finding).
func Render(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Keys appends during map iteration and never sorts (maporder: finding).
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys appends then sorts after the loop (maporder: clean).
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Publish sends map entries into a channel (maporder: finding).
func Publish(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v
	}
}

// Invert builds a map from a map; no order leaks (maporder: clean).
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
		scratch := []string{}
		scratch = append(scratch, k) // per-iteration slice: clean
		_ = scratch
	}
	return out
}

// nowMicros hides the clock one call deep (wallclock: direct finding here;
// every caller is flagged through the interprocedural summary).
func nowMicros() int64 { return time.Now().UnixNano() }

// Tag reaches the clock through nowMicros (wallclock: transitive finding).
func Tag() int64 { return nowMicros() }

// Audit is two hops from the clock; the witness chain elides the middle
// (wallclock: transitive finding).
func Audit() int64 { return Tag() }

// Clock smuggles the clock out as a stored function value (wallclock:
// finding even though nothing here calls it).
var Clock = time.Now

// roll hides the global source one call deep (globalrand: direct finding
// here; callers are flagged through the summary).
func roll() int { return rand.Intn(6) }

// Deal reaches the global source through roll (globalrand: transitive
// finding).
func Deal() int { return roll() }

// TimeSeededSource seeds from the clock behind a helper (globalrand:
// finding via the helper's wallclock summary; wallclock flags the nowMicros
// call too).
func TimeSeededSource() rand.Source { return rand.NewSource(nowMicros()) }

// emit hides the writer one call deep (summary: emits to a writer).
func emit(w io.Writer, s string) { fmt.Fprintln(w, s) }

// RenderVia emits during map iteration through emit (maporder: transitive
// finding).
func RenderVia(w io.Writer, m map[string]int) {
	for k := range m {
		emit(w, k)
	}
}

// send hides the channel send one call deep (summary: emits on a channel).
func send(ch chan<- int, v int) { ch <- v }

// PublishVia sends during map iteration through send (maporder: transitive
// finding).
func PublishVia(m map[string]int, ch chan<- int) {
	for _, v := range m {
		send(ch, v)
	}
}

// collect appends through its pointer parameter (summary: appends via
// parameter 0).
func collect(dst *[]string, k string) { *dst = append(*dst, k) }

// KeysVia accumulates through collect during map iteration and never sorts
// (maporder: transitive finding).
func KeysVia(m map[string]int) []string {
	var out []string
	for k := range m {
		collect(&out, k)
	}
	return out
}

// SortedKeysVia accumulates through collect, then sorts — the collect-and-
// sort idiom stays clean across a call boundary (maporder: clean).
func SortedKeysVia(m map[string]int) []string {
	var out []string
	for k := range m {
		collect(&out, k)
	}
	sort.Strings(out)
	return out
}

// Package obs is a lint fixture for the nil-fast-path contract: every
// exported pointer-receiver method must open with a nil guard or delegate
// to one that does.
package obs

// Meter is the fixture metric handle.
type Meter struct{ n int64 }

// Add is guarded (nilobs: clean).
func (m *Meter) Add(d int64) {
	if m == nil {
		return
	}
	m.n += d
}

// Inc delegates to a guarded method (nilobs: clean).
func (m *Meter) Inc() { m.Add(1) }

// Value inverts the guard, wrapping the body (nilobs: clean).
func (m *Meter) Value() int64 {
	if m != nil {
		return m.n
	}
	return 0
}

// Reset has no guard (nilobs: finding).
func (m *Meter) Reset() {
	m.n = 0
}

// reset is unexported; the contract binds the public surface only
// (nilobs: clean).
func (m *Meter) reset() { m.n = 0 }

// Snapshot is a value receiver; a nil pointer cannot reach it without the
// caller dereferencing first (nilobs: clean).
type Snapshot struct{ N int64 }

// Level reports the snapshot level (nilobs: clean — value receiver).
func (s Snapshot) Level() int64 { return s.N }

// Package bufpool is the poolleak fixture: leases that leak on an early
// return, reads after Put, and the balanced idioms — direct, deferred, and
// through putter/lease helpers the summary engine must understand.
package bufpool

import "sync"

var pool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// Grow leaks the lease on its early-return path (poolleak: finding at the
// return; the happy path below is balanced).
func Grow(n int) int {
	bp := pool.Get().(*[]byte)
	if n > 1<<20 {
		return -1
	}
	for cap(*bp) < n {
		*bp = append(*bp, 0)
	}
	c := cap(*bp)
	pool.Put(bp)
	return c
}

// UseAfterPut reads the buffer after handing it back: the pool may already
// have given it to another goroutine (poolleak: finding).
func UseAfterPut() int {
	bp := pool.Get().(*[]byte)
	pool.Put(bp)
	return len(*bp)
}

// Scoped discharges by defer, covering every path (poolleak: clean).
func Scoped(f func([]byte)) {
	bp := pool.Get().(*[]byte)
	defer pool.Put(bp)
	f(*bp)
}

// lease transfers a live obligation to its caller (summary: returns pooled).
func lease() *[]byte {
	return pool.Get().(*[]byte)
}

// putBack discharges its parameter (summary: puts parameter 0).
func putBack(bp *[]byte) {
	pool.Put(bp)
}

// Balanced routes the lease through both helpers (poolleak: clean).
func Balanced() int {
	bp := lease()
	n := cap(*bp)
	putBack(bp)
	return n
}

// Borrowed takes the lease from the helper and never returns it (poolleak:
// finding — the summary marks lease() as returning a pooled value).
func Borrowed() int {
	bp := lease()
	return len(*bp)
}

// Relay passes the lease on to its own caller (poolleak: clean — the
// obligation transfers with the return value).
func Relay() *[]byte {
	bp := lease()
	*bp = (*bp)[:0]
	return bp
}

// Package pcapio is the fixture stand-in for the real capture reader: its
// ReadInto/EachInto record buffers are caller-owned and recycled between
// reads, which is the contract the aliasretain analyzer enforces on callers
// (the analyzer matches this package by its module-relative path).
package pcapio

import "errors"

// Record is one captured frame; Data aliases the reused read buffer.
type Record struct {
	TimeMicros int64
	Data       []byte
}

// Reader replays a canned list of frames through the reused-buffer API.
type Reader struct {
	frames [][]byte
	next   int
	buf    []byte
}

// NewReader returns a reader over frames.
func NewReader(frames [][]byte) *Reader { return &Reader{frames: frames} }

// ErrEOF ends iteration.
var ErrEOF = errors.New("pcapio fixture: EOF")

// ReadInto fills rec with the next frame, reusing rec.Data's backing array —
// the next ReadInto overwrites it, so callers copy what they keep.
func (r *Reader) ReadInto(rec *Record) error {
	if r.next >= len(r.frames) {
		return ErrEOF
	}
	r.buf = append(r.buf[:0], r.frames[r.next]...)
	rec.TimeMicros = int64(r.next)
	rec.Data = r.buf
	r.next++
	return nil
}

// EachInto streams every frame through fn in one reused Record; fn must not
// retain rec.Data past its return.
func (r *Reader) EachInto(fn func(Record) error) error {
	var rec Record
	for {
		err := r.ReadInto(&rec)
		if err == ErrEOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Analyzer{
		Name: "poolleak",
		Doc: "checks that every sync.Pool.Get result (including leases from functions " +
			"summarized as returning pooled values, like reassembly's getStream) reaches a " +
			"Put, a putter function, an ownership handoff, or a return on every path, and " +
			"that neither the value nor any alias of it is used after the Put",
		Run: runPoolleak,
	})
}

func runPoolleak(p *Pass) {
	for _, f := range p.Files {
		// Every function body — declarations and literals — is checked on its
		// own: a lease must balance within the function that acquired it.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkPoolPaths(p, fn.Body)
				}
			case *ast.FuncLit:
				checkPoolPaths(p, fn.Body)
			}
			return true
		})
	}
}

// obligation is one live pool lease: the local holding a Get result, where
// it was acquired, and the aliases derived from it (for use-after-Put).
type obligation struct {
	obj     types.Object
	pos     token.Pos
	name    string
	aliases map[types.Object]bool
}

func (o *obligation) covers(obj types.Object) bool {
	return obj != nil && (obj == o.obj || o.aliases[obj])
}

// leakState is the path-sensitive live-obligation set.
type leakState struct {
	live map[types.Object]*obligation
}

func (st *leakState) clone() *leakState {
	c := &leakState{live: make(map[types.Object]*obligation, len(st.live))}
	for k, v := range st.live {
		c.live[k] = v
	}
	return c
}

type leakWalker struct {
	pass *Pass
}

// checkPoolPaths walks one function body (nested literals are checked
// separately — a lease must balance within the function that acquired it).
func checkPoolPaths(p *Pass, body *ast.BlockStmt) {
	w := &leakWalker{pass: p}
	st := &leakState{live: map[types.Object]*obligation{}}
	if terminated := w.walkList(body.List, st); !terminated {
		for _, ob := range st.live {
			p.Reportf(ob.pos,
				"pooled buffer %q acquired here never reaches the pool again on the fall-through path; call Put (or hand ownership off) before returning",
				ob.name)
		}
	}
}

// walkList is the structural path walk over one statement list. It mutates
// st and reports leaks at each return; the result says whether the list
// terminates (every path through it returns), so branch merges can ignore
// dead fall-throughs.
func (w *leakWalker) walkList(stmts []ast.Stmt, st *leakState) bool {
	for idx, stmt := range stmts {
		rest := stmts[idx+1:]
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			w.assign(s, st)
			w.stmtCalls(s, st, rest)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						w.valueSpec(vs, st)
					}
				}
			}
			w.stmtCalls(s, st, rest)
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok && pooledCall(w.pass, call) {
				w.pass.Reportf(call.Pos(), "pooled buffer acquired and immediately dropped; bind it and Put it back")
				continue
			}
			w.stmtCalls(s, st, rest)
		case *ast.DeferStmt:
			w.deferred(s, st)
		case *ast.SendStmt:
			w.handoffExpr(s.Value, st)
			w.stmtCalls(s, st, rest)
		case *ast.GoStmt:
			for _, arg := range s.Call.Args {
				w.handoffExpr(arg, st)
			}
		case *ast.ReturnStmt:
			w.stmtCalls(s, st, rest)
			for _, res := range s.Results {
				w.handoffExpr(res, st) // lease transfer to the caller
			}
			for _, ob := range st.live {
				w.pass.Reportf(s.Pos(),
					"return leaks pooled buffer %q (acquired at line %d): this path never calls Put",
					ob.name, w.pass.Fset.Position(ob.pos).Line)
			}
			return true
		case *ast.IfStmt:
			if s.Init != nil {
				w.walkList([]ast.Stmt{s.Init}, st)
			}
			w.stmtCalls(s.Cond, st, rest)
			thenSt := st.clone()
			tTerm := w.walkList(s.Body.List, thenSt)
			switch e := s.Else.(type) {
			case nil:
				if !tTerm {
					st.union(thenSt)
				}
			case *ast.BlockStmt:
				elseSt := st.clone()
				eTerm := w.walkList(e.List, elseSt)
				w.mergeBranches(st, thenSt, tTerm, elseSt, eTerm)
				if tTerm && eTerm {
					return true
				}
			case *ast.IfStmt:
				elseSt := st.clone()
				eTerm := w.walkList([]ast.Stmt{e}, elseSt)
				w.mergeBranches(st, thenSt, tTerm, elseSt, eTerm)
				if tTerm && eTerm {
					return true
				}
			}
		case *ast.ForStmt:
			w.loopBody(s.Body, st)
		case *ast.RangeStmt:
			w.loopBody(s.Body, st)
		case *ast.SwitchStmt:
			w.switchClauses(s.Body, st, hasDefaultClause(s.Body))
		case *ast.TypeSwitchStmt:
			w.switchClauses(s.Body, st, hasDefaultClause(s.Body))
		case *ast.SelectStmt:
			w.switchClauses(s.Body, st, false)
		case *ast.BlockStmt:
			if w.walkList(s.List, st) {
				return true
			}
		case *ast.LabeledStmt:
			if w.walkList([]ast.Stmt{s.Stmt}, st) {
				return true
			}
		default:
			w.stmtCalls(s, st, rest)
		}
	}
	return false
}

// union keeps an obligation live if it is live in either state — the
// conservative merge for a branch that may not have executed.
func (st *leakState) union(o *leakState) {
	for k, v := range o.live {
		st.live[k] = v
	}
}

// mergeBranches folds an if/else pair back into st: a terminated branch
// already reported its leaks, so only fall-through branches constrain what
// stays live.
func (w *leakWalker) mergeBranches(st, thenSt *leakState, tTerm bool, elseSt *leakState, eTerm bool) {
	switch {
	case tTerm && eTerm:
		st.live = map[types.Object]*obligation{}
	case tTerm:
		st.live = elseSt.live
	case eTerm:
		st.live = thenSt.live
	default:
		// Live after the if ⇔ live on either arm: a discharge must happen on
		// both arms to count.
		merged := map[types.Object]*obligation{}
		for k, v := range thenSt.live {
			merged[k] = v
		}
		for k, v := range elseSt.live {
			merged[k] = v
		}
		st.live = merged
	}
}

// loopBody walks a loop body on a cloned state: the loop may run zero times,
// so discharges inside grant no credit after it — but an obligation acquired
// inside the body that is still live when the body ends leaks once per
// iteration and is reported here.
func (w *leakWalker) loopBody(body *ast.BlockStmt, st *leakState) {
	bodySt := st.clone()
	if w.walkList(body.List, bodySt) {
		return
	}
	for _, ob := range bodySt.live {
		if ob.pos >= body.Pos() && ob.pos <= body.End() {
			w.pass.Reportf(ob.pos,
				"pooled buffer %q acquired inside the loop is not returned to the pool by the end of the iteration",
				ob.name)
		}
	}
}

// switchClauses walks each case body on a clone. With a default clause the
// merged state is the union of the non-terminating arms (a discharge in
// every arm counts); without one, fall-past-all-cases keeps the original
// state live too.
func (w *leakWalker) switchClauses(body *ast.BlockStmt, st *leakState, hasDefault bool) {
	before := st.clone()
	var merged *leakState
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		default:
			continue
		}
		armSt := before.clone()
		if w.walkList(list, armSt) {
			continue
		}
		if merged == nil {
			merged = armSt
		} else {
			merged.union(armSt)
		}
	}
	if merged == nil {
		merged = &leakState{live: map[types.Object]*obligation{}}
	}
	if !hasDefault {
		merged.union(before)
	}
	st.live = merged.live
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// assign handles obligation birth (x := pool.Get().(*T), x := lease()),
// alias creation, and heap-store handoffs.
func (w *leakWalker) assign(s *ast.AssignStmt, st *leakState) {
	info := w.pass.Info
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		if pooledCall(w.pass, rhs) {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				obj := objOf(info, id)
				if obj != nil && id.Name != "_" {
					st.live[obj] = &obligation{obj: obj, pos: rhs.Pos(), name: id.Name, aliases: map[types.Object]bool{}}
				}
				continue
			}
			// Pooled value born straight into a field/container: ownership
			// lives with that structure (the newRawConn pattern); a putter
			// (flows.release) discharges it later.
			continue
		}
		w.flowInto(lhs, rhs, st)
	}
}

func (w *leakWalker) valueSpec(vs *ast.ValueSpec, st *leakState) {
	info := w.pass.Info
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			continue
		}
		if pooledCall(w.pass, vs.Values[i]) {
			obj := info.Defs[name]
			if obj != nil && name.Name != "_" {
				st.live[obj] = &obligation{obj: obj, pos: vs.Values[i].Pos(), name: name.Name, aliases: map[types.Object]bool{}}
			}
			continue
		}
		w.flowInto(name, vs.Values[i], st)
	}
}

// flowInto classifies a non-birth assignment touching an obligation: a plain
// local binding derives an alias; a store whose root is someone else's
// memory (field, element, package variable) hands ownership off.
func (w *leakWalker) flowInto(lhs, rhs ast.Expr, st *leakState) {
	info := w.pass.Info
	ob := w.mentioned(rhs, st)
	if ob == nil {
		return
	}
	if id, plain := unparen(lhs).(*ast.Ident); plain {
		obj := objOf(info, id)
		if obj == nil || id.Name == "_" {
			return
		}
		if t := info.TypeOf(id); t != nil && !refBearing(t) {
			return // scalar derived from the buffer (cap, len): no alias
		}
		ob.aliases[obj] = true
		return
	}
	root := rootIdent(unparen(lhs))
	if root != nil && ob.covers(objOf(info, root)) {
		return // *bp = (*bp)[:n] — resizing the lease is not a handoff
	}
	delete(st.live, ob.obj)
}

// handoffExpr discharges obligations mentioned in an ownership-transferring
// position (return value, channel send, goroutine argument). A scalar
// expression cannot carry the lease — len(*bp) transfers nothing — so only
// reference-bearing values count.
func (w *leakWalker) handoffExpr(e ast.Expr, st *leakState) {
	if t := w.pass.Info.TypeOf(e); t != nil && !refBearing(t) {
		return
	}
	if ob := w.mentioned(e, st); ob != nil {
		delete(st.live, ob.obj)
	}
}

// mentioned returns a live obligation whose value (or alias) appears in e.
func (w *leakWalker) mentioned(e ast.Expr, st *leakState) *obligation {
	if e == nil || len(st.live) == 0 {
		return nil
	}
	var found *obligation
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOf(w.pass.Info, id)
		for _, ob := range st.live {
			if ob.covers(obj) {
				found = ob
				return false
			}
		}
		return true
	})
	return found
}

// stmtCalls scans every call inside stmt for discharges: direct Put, a
// callee summarized as a putter (PutsParam), or a callee that retains its
// argument (Escapes — ownership handoff). A Put also arms the use-after-Put
// check over the remaining statements of the current list.
func (w *leakWalker) stmtCalls(stmt ast.Node, st *leakState, rest []ast.Stmt) {
	info := w.pass.Info
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a Put inside a literal runs when the literal does
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSyncPoolMethod(info, call, "Put") && len(call.Args) == 1 {
			if ob := w.mentioned(call.Args[0], st); ob != nil {
				delete(st.live, ob.obj)
				w.useAfterPut(ob, rest)
			}
			return true
		}
		callee := staticCallee(info, call)
		sum := w.pass.Prog.SummaryOf(callee)
		if sum == nil {
			return true
		}
		args := callArgs(info, call)
		for i, arg := range args {
			ob := w.mentioned(arg, st)
			if ob == nil {
				continue
			}
			ci := argIndex(callee, i)
			if sum.PutsParam[ci] {
				delete(st.live, ob.obj)
				w.useAfterPut(ob, rest)
			} else if sum.flow(ci).Escapes {
				delete(st.live, ob.obj) // callee retains it: ownership handoff
			}
		}
		return true
	})
}

// deferred handles defer pool.Put(x) / defer release(x) / wrapping
// literals: the discharge covers every path from here on, with no
// use-after-Put hazard (defers run last).
func (w *leakWalker) deferred(s *ast.DeferStmt, st *leakState) {
	discharge := func(call *ast.CallExpr) {
		info := w.pass.Info
		if isSyncPoolMethod(info, call, "Put") && len(call.Args) == 1 {
			if ob := w.mentioned(call.Args[0], st); ob != nil {
				delete(st.live, ob.obj)
			}
			return
		}
		callee := staticCallee(info, call)
		sum := w.pass.Prog.SummaryOf(callee)
		if sum == nil {
			return
		}
		args := callArgs(info, call)
		for i, arg := range args {
			if ob := w.mentioned(arg, st); ob != nil && sum.PutsParam[argIndex(callee, i)] {
				delete(st.live, ob.obj)
			}
		}
	}
	discharge(s.Call)
	if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				discharge(call)
			}
			return true
		})
	}
}

// useAfterPut reports reads of a discharged lease (or its aliases) in the
// statements after the Put in the same list — the buffer now belongs to the
// pool and may be handed to another goroutine at any moment.
func (w *leakWalker) useAfterPut(ob *obligation, rest []ast.Stmt) {
	info := w.pass.Info
	for _, stmt := range rest {
		var hit ast.Node
		ast.Inspect(stmt, func(n ast.Node) bool {
			if hit != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && ob.covers(objOf(info, id)) {
				hit = n
				return false
			}
			return true
		})
		if hit != nil {
			w.pass.Reportf(hit.Pos(),
				"%q used after being returned to the pool (Put already ran): the pool may have handed the buffer to another goroutine",
				ob.name)
			return
		}
	}
}

// pooledCall reports whether e produces a live pool lease: sync.Pool.Get
// (possibly type-asserted) or a call to a function summarized ReturnsPooled.
func pooledCall(p *Pass, e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.TypeAssertExpr:
		return pooledCall(p, x.X)
	case *ast.CallExpr:
		if isSyncPoolMethod(p.Info, x, "Get") {
			return true
		}
		if callee := staticCallee(p.Info, x); callee != nil {
			if sum := p.Prog.SummaryOf(callee); sum != nil && sum.ReturnsPooled {
				return true
			}
		}
	}
	return false
}

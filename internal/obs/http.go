package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live metrics endpoint: /metrics (Prometheus text format),
// /debug/vars (expvar JSON), and /debug/pprof (the standard Go profiler
// surface), bound to one Obs.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Route attaches an extra handler to the metrics endpoint — commands use it
// to expose run-specific surfaces (e.g. /debug/explain) on the same
// listener.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Serve starts listening on addr (":0" picks a free port) and serves o's
// registry plus any extra routes. It returns as soon as the listener is
// bound; requests are handled on a background goroutine.
func Serve(addr string, o *Obs, extra ...Route) (*Server, error) {
	reg := o.Registry()
	reg.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always errors on Close
	return s, nil
}

// Registry returns o's registry, surviving a nil receiver (so Serve can be
// handed a disabled Obs and still expose an empty, valid endpoint).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Addr returns the bound listen address (useful with ":0"), or "" on a nil
// Server.
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. A nil Server closes trivially.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

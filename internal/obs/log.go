package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
	}
}

// InitLogging installs the process default slog logger: a text handler on
// w (stderr when nil) at the given level. Every cmd calls this right after
// flag parsing so diagnostics share one structured format while report
// payloads stay on stdout.
func InitLogging(w io.Writer, level string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	if w == nil {
		w = os.Stderr
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lv})))
	return nil
}

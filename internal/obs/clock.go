package obs

import "time"

// This file is the one sanctioned wall-clock source for analyzer code. The
// wallclock lint analyzer (internal/lint) forbids time.Now and friends
// outside internal/obs and the cmd front-ends: the analyzer is passive, so
// every analytic timestamp must come from the trace. Code that needs to
// time *itself* — queue waits, stage durations, throughput harnesses —
// reads the clock through these helpers, which keeps every wall-clock
// dependency greppable and reviewable in one place.

// Now returns the current wall-clock time for self-instrumentation.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since t.
func Since(t time.Time) time.Duration { return time.Since(t) }

package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks how far a long ingest has come: bytes and records read,
// connections seen/completed/in-flight, and — when the input size is known
// — an ETA extrapolated from the byte fraction. All updates are lock-free
// and nil-safe.
type Progress struct {
	start      time.Time
	totalBytes atomic.Int64
	bytesRead  atomic.Int64
	records    atomic.Int64
	connsSeen  atomic.Int64
	connsDone  atomic.Int64
	inFlight   atomic.Int64
}

// NewProgress creates a Progress anchored at the current time.
func NewProgress() *Progress {
	return &Progress{start: time.Now()}
}

// SetTotalBytes declares the input size (0 = unknown; disables ETA).
func (p *Progress) SetTotalBytes(n int64) {
	if p != nil {
		p.totalBytes.Store(n)
	}
}

// SetBytesRead stores the bytes consumed so far.
func (p *Progress) SetBytesRead(n int64) {
	if p != nil {
		p.bytesRead.Store(n)
	}
}

// AddRecords counts n more ingested records.
func (p *Progress) AddRecords(n int64) {
	if p != nil {
		p.records.Add(n)
	}
}

// ConnSeen counts a newly demultiplexed connection.
func (p *Progress) ConnSeen() {
	if p != nil {
		p.connsSeen.Add(1)
	}
}

// ConnStart marks one connection's analysis as in flight.
func (p *Progress) ConnStart() {
	if p != nil {
		p.inFlight.Add(1)
	}
}

// ConnDone marks one connection's analysis as completed.
func (p *Progress) ConnDone() {
	if p != nil {
		p.inFlight.Add(-1)
		p.connsDone.Add(1)
	}
}

// fmtBytes renders n in binary-ish MB with one decimal.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Line renders a one-line progress summary.
func (p *Progress) Line() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	read := p.bytesRead.Load()
	total := p.totalBytes.Load()
	elapsed := time.Since(p.start)
	b.WriteString("progress: ")
	if total > 0 {
		pct := float64(read) / float64(total) * 100
		if pct > 100 {
			// Declared sizes can undershoot (e.g. growing captures); a
			// progress line past 100% reads as a bug, so clamp.
			pct = 100
		}
		fmt.Fprintf(&b, "%s / %s (%.0f%%)", fmtBytes(read), fmtBytes(total), pct)
	} else {
		b.WriteString(fmtBytes(read))
	}
	fmt.Fprintf(&b, "  records=%d  conns: %d seen, %d done, %d in flight  elapsed=%s",
		p.records.Load(), p.connsSeen.Load(), p.connsDone.Load(), p.inFlight.Load(),
		elapsed.Round(100*time.Millisecond))
	if total > 0 && read > 0 && read < total {
		eta := time.Duration(float64(elapsed) * float64(total-read) / float64(read))
		fmt.Fprintf(&b, "  eta=%s", eta.Round(100*time.Millisecond))
	}
	return b.String()
}

// Run starts a background reporter that writes Line to w every interval.
// The returned stop function halts the reporter and writes one final line,
// so even runs shorter than the interval report once.
func (p *Progress) Run(w io.Writer, interval time.Duration) (stop func()) {
	if p == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, p.Line())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			fmt.Fprintln(w, p.Line())
		})
	}
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace_event (catapult JSON) record — the format
// Perfetto and chrome://tracing load. Ts/Pid/Tid are intentionally not
// omitempty: the schema check (and strict viewers) require name/ph/ts/pid/
// tid on every event, including metadata and instant events at ts 0.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"` // µs
	Dur  int64  `json:"dur,omitempty"`
	Pid  int64  `json:"pid"`
	Tid  int64  `json:"tid"`
	// ID correlates async begin/end pairs (ph "b"/"e").
	ID int64 `json:"id,omitempty"`
	// Args serialize with sorted keys (encoding/json), so traces stay
	// deterministic for deterministic inputs.
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the catapult JSON envelope.
type traceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// WriteTrace serializes events as a catapult JSON object. The event order
// is preserved (viewers sort by ts themselves).
func WriteTrace(w io.Writer, events []TraceEvent) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events})
}

// MetaEvent builds a metadata record (ph "M") — process_name/thread_name
// labels for the lanes a trace uses.
func MetaEvent(name string, pid, tid int64, label string) TraceEvent {
	return TraceEvent{
		Name: name, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": label},
	}
}

// SpanSchemaVersion is the span-log JSONL schema version. Version 2 added
// the explicit "v" field itself; the v1 records (no "v" key) carry the same
// remaining fields, so ConvertSpanLog reads both.
const SpanSchemaVersion = 2

// SpanRecord is one span-log line: a pipeline-stage execution with its
// start offset (µs since the run began), duration, and work counters.
type SpanRecord struct {
	V           int    `json:"v"`
	Stage       Stage  `json:"stage"`
	Conn        string `json:"conn"`
	StartMicros int64  `json:"start_us"`
	DurMicros   int64  `json:"dur_us"`
	Bytes       int64  `json:"bytes"`
	Packets     int64  `json:"packets"`
}

// KeepSpans makes o retain every finished span in memory (in addition to
// any span log), so the run can be exported as a trace afterwards. Call it
// before analysis starts.
func (o *Obs) KeepSpans() {
	if o == nil {
		return
	}
	o.spanMu.Lock()
	o.keepSpans = true
	o.spanMu.Unlock()
}

// Spans returns a copy of the retained span records (nil unless KeepSpans
// was called). Completion order under a worker pool is nondeterministic;
// SpanTraceEvents sorts before rendering.
func (o *Obs) Spans() []SpanRecord {
	if o == nil {
		return nil
	}
	o.spanMu.Lock()
	defer o.spanMu.Unlock()
	return append([]SpanRecord(nil), o.spans...)
}

// stageLane maps a stage to its trace lane (tid), in pipeline order.
// Unknown stages (a future schema) land on a trailing lane.
func stageLane(st Stage) int64 {
	for i, s := range Stages {
		if s == st {
			return int64(i)
		}
	}
	return int64(len(Stages))
}

// SpanTraceEvents renders pipeline spans as complete events (ph "X") under
// one process: one lane per stage, labeled via thread_name metadata. Spans
// are sorted by (start, stage, conn) first so the output is stable for a
// given span set regardless of completion order.
func SpanTraceEvents(spans []SpanRecord, pid int64) []TraceEvent {
	sorted := append([]SpanRecord(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.StartMicros != b.StartMicros {
			return a.StartMicros < b.StartMicros
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Conn < b.Conn
	})
	out := make([]TraceEvent, 0, len(sorted)+len(Stages)+1)
	out = append(out, MetaEvent("process_name", pid, 0, "tdat pipeline"))
	for i, st := range Stages {
		out = append(out, MetaEvent("thread_name", pid, int64(i), string(st)))
	}
	for _, s := range sorted {
		dur := s.DurMicros
		if dur < 1 {
			dur = 1 // zero-width spans vanish in viewers
		}
		ev := TraceEvent{
			Name: string(s.Stage), Cat: "pipeline", Ph: "X",
			Ts: s.StartMicros, Dur: dur, Pid: pid, Tid: stageLane(s.Stage),
		}
		if s.Conn != "" || s.Bytes != 0 || s.Packets != 0 {
			ev.Args = map[string]any{}
			if s.Conn != "" {
				ev.Args["conn"] = s.Conn
			}
			if s.Bytes != 0 {
				ev.Args["bytes"] = s.Bytes
			}
			if s.Packets != 0 {
				ev.Args["packets"] = s.Packets
			}
		}
		out = append(out, ev)
	}
	return out
}

// ConvertSpanLog reads a span-log JSONL stream (schema v1 or v2) and writes
// the equivalent catapult JSON trace — the offline path to a Perfetto view
// of a run whose spans were logged but not retained.
func ConvertSpanLog(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var spans []SpanRecord
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return fmt.Errorf("span log line %d: %v", line, err)
		}
		spans = append(spans, rec)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return WriteTrace(w, SpanTraceEvents(spans, 1))
}

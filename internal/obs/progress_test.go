package obs

import (
	"strings"
	"testing"
)

func TestProgressLineZeroRateStart(t *testing.T) {
	// Total known, nothing read yet: no ETA (division by zero rate) and 0%.
	p := NewProgress()
	p.SetTotalBytes(1 << 20)
	line := p.Line()
	if strings.Contains(line, "eta=") {
		t.Errorf("ETA rendered with zero bytes read: %s", line)
	}
	if !strings.Contains(line, "(0%)") {
		t.Errorf("want 0%% at start: %s", line)
	}
}

func TestProgressLineOvershootClamps(t *testing.T) {
	// A declared size smaller than what was actually read (growing capture,
	// undershooting Stat) must not report >100% or a negative ETA.
	p := NewProgress()
	p.SetTotalBytes(1000)
	p.SetBytesRead(2500)
	line := p.Line()
	if !strings.Contains(line, "(100%)") {
		t.Errorf("overshoot not clamped to 100%%: %s", line)
	}
	if strings.Contains(line, "eta=") {
		t.Errorf("ETA rendered past completion: %s", line)
	}
	if strings.Contains(line, "-") && strings.Contains(line, "eta=-") {
		t.Errorf("negative ETA: %s", line)
	}
}

func TestProgressLineCompletion(t *testing.T) {
	// Exactly complete: 100%, no ETA.
	p := NewProgress()
	p.SetTotalBytes(4096)
	p.SetBytesRead(4096)
	line := p.Line()
	if !strings.Contains(line, "(100%)") {
		t.Errorf("completion not at 100%%: %s", line)
	}
	if strings.Contains(line, "eta=") {
		t.Errorf("ETA rendered at completion: %s", line)
	}
}

func TestProgressLineByteRegression(t *testing.T) {
	// A byte counter that moves backwards (demux salvage rewinds the reader)
	// still renders midway, with a finite non-negative ETA.
	p := NewProgress()
	p.SetTotalBytes(10_000)
	p.SetBytesRead(8_000)
	p.SetBytesRead(2_000)
	line := p.Line()
	if !strings.Contains(line, "(20%)") {
		t.Errorf("regressed counter not reflected: %s", line)
	}
	if strings.Contains(line, "eta=-") {
		t.Errorf("negative ETA after regression: %s", line)
	}
	if !strings.Contains(line, "eta=") {
		t.Errorf("mid-transfer line lost its ETA: %s", line)
	}
}

func TestProgressLineUnknownTotal(t *testing.T) {
	p := NewProgress()
	p.SetBytesRead(5 << 20)
	line := p.Line()
	if strings.Contains(line, "%") {
		t.Errorf("percentage rendered with unknown total: %s", line)
	}
	if strings.Contains(line, "eta=") {
		t.Errorf("ETA rendered with unknown total: %s", line)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	if p.Line() != "" {
		t.Error("nil Progress produced a line")
	}
	p.SetTotalBytes(1)
	p.SetBytesRead(1)
	p.AddRecords(1)
	p.ConnSeen()
	p.ConnStart()
	p.ConnDone()
	stop := p.Run(nil, 0)
	stop()
}

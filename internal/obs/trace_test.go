package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses catapult JSON into raw maps so tests can check key
// presence (struct decoding would hide a missing field behind a zero value).
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	return f.TraceEvents
}

// requireSchema asserts the trace_event contract: every event carries
// name/ph/ts/pid/tid.
func requireSchema(t *testing.T, events []map[string]any) {
	t.Helper()
	for i, ev := range events {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
}

func TestWriteTraceSchema(t *testing.T) {
	spans := []SpanRecord{
		{Stage: StageSeries, Conn: "a->b", StartMicros: 10, DurMicros: 5, Bytes: 100, Packets: 3},
		{Stage: StageDecode, StartMicros: 0, DurMicros: 2},
		{Stage: StageMerge, StartMicros: 20}, // zero duration → min width 1
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, SpanTraceEvents(spans, 1)); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	requireSchema(t, events)
	// Metadata (process + one thread per stage) precedes the spans.
	wantEvents := 1 + len(Stages) + len(spans)
	if len(events) != wantEvents {
		t.Fatalf("got %d events, want %d", len(events), wantEvents)
	}
	// Spans sort by start: decode(0) before series(10) before merge(20).
	var names []string
	for _, ev := range events {
		if ev["ph"] == "X" {
			names = append(names, ev["name"].(string))
		}
	}
	if got := strings.Join(names, ","); got != "decode,series,merge" {
		t.Errorf("span order %q, want decode,series,merge", got)
	}
}

func TestSpanTraceEventsDeterministicOrder(t *testing.T) {
	spans := []SpanRecord{
		{Stage: StageSeries, Conn: "b->c", StartMicros: 5, DurMicros: 1},
		{Stage: StageFactors, Conn: "a->b", StartMicros: 5, DurMicros: 1},
		{Stage: StageSeries, Conn: "a->b", StartMicros: 5, DurMicros: 1},
	}
	render := func(s []SpanRecord) string {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, SpanTraceEvents(s, 1)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(spans)
	// Any completion order produces identical bytes.
	shuffled := []SpanRecord{spans[2], spans[0], spans[1]}
	if got := render(shuffled); got != want {
		t.Errorf("trace depends on span completion order:\n%s\nvs\n%s", got, want)
	}
}

func TestKeepSpansRetention(t *testing.T) {
	o := New()
	if got := o.Spans(); got != nil {
		t.Fatalf("spans retained without KeepSpans: %v", got)
	}
	o.KeepSpans()
	if !o.SpanLogEnabled() {
		t.Error("SpanLogEnabled false with KeepSpans on")
	}
	o.StartSpan(StageSeries, "a->b").EndN(10, 2)
	o.StartSpan(StageDetect, "a->b").End()
	spans := o.Spans()
	if len(spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(spans))
	}
	if spans[0].Stage != StageSeries || spans[0].Bytes != 10 || spans[0].Packets != 2 {
		t.Errorf("first span = %+v", spans[0])
	}
	if spans[0].V != SpanSchemaVersion {
		t.Errorf("span schema v = %d, want %d", spans[0].V, SpanSchemaVersion)
	}
	// Nil receiver no-ops.
	var nilObs *Obs
	nilObs.KeepSpans()
	if nilObs.Spans() != nil {
		t.Error("nil Obs retained spans")
	}
}

func TestConvertSpanLog(t *testing.T) {
	// v2 line (with "v") and a v1 line (without) in one log.
	log := `{"v":2,"stage":"series","conn":"a->b","start_us":10,"dur_us":5,"bytes":100,"packets":3}
{"stage":"decode","conn":"","start_us":0,"dur_us":2,"bytes":0,"packets":0}
`
	var buf bytes.Buffer
	if err := ConvertSpanLog(strings.NewReader(log), &buf); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	requireSchema(t, events)
	spans := 0
	for _, ev := range events {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans != 2 {
		t.Errorf("converted %d spans, want 2", spans)
	}
}

func TestConvertSpanLogBadLine(t *testing.T) {
	err := ConvertSpanLog(strings.NewReader("not json\n"), &bytes.Buffer{})
	if err == nil {
		t.Fatal("bad span log accepted")
	}
}

func TestSpanLogRoundTrip(t *testing.T) {
	// The JSONL EndN writes must parse back into the same record shape the
	// converter consumes.
	o := New()
	var log bytes.Buffer
	o.SetSpanLog(&log)
	o.StartSpan(StageSeries, "a->b").EndN(64, 1)
	var rec SpanRecord
	if err := json.Unmarshal(log.Bytes(), &rec); err != nil {
		t.Fatalf("span log line does not parse: %v\n%s", err, log.String())
	}
	if rec.V != SpanSchemaVersion {
		t.Errorf("logged v = %d, want %d", rec.V, SpanSchemaVersion)
	}
	if rec.Stage != StageSeries || rec.Conn != "a->b" || rec.Bytes != 64 || rec.Packets != 1 {
		t.Errorf("round-tripped record = %+v", rec)
	}
	// The CI smoke grep anchors on the literal stage key.
	if !strings.Contains(log.String(), `"stage":"series"`) {
		t.Errorf("span log lost the stage key: %s", log.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{100, 1000})
	h.Observe(40)
	h.Observe(400)
	h.Observe(4000)
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 550},   // second obs: midway through (100,1000]
		{0.95, 1000}, // +Inf bucket clamps to the last finite bound
		{0.99, 1000},
		{0, 0}, // target 0 lands in the first bucket at its lower edge
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Empty and nil histograms.
	if got := newHistogram([]int64{10}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}
	// Out-of-range q clamps.
	if got := h.Quantile(2); got != 1000 {
		t.Errorf("Quantile(2) = %v, want 1000", got)
	}
}

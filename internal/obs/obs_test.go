package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	// Upper bounds are inclusive, like Prometheus `le`.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {9, 0}, {10, 0},
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // +Inf
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := h.BucketCounts()
	want := []int64{3, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %d, want %d", h.Sum(), sum)
	}
}

func TestHistogramBoundsSortedAndDeduped(t *testing.T) {
	h := newHistogram([]int64{500, 50, 500, 5})
	want := []int64{5, 50, 500}
	got := h.Bounds()
	if len(got) != len(want) {
		t.Fatalf("bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
	if len(h.BucketCounts()) != len(want)+1 {
		t.Errorf("buckets = %d, want %d (+Inf)", len(h.BucketCounts()), len(want)+1)
	}
}

func TestConcurrentCounters(t *testing.T) {
	// Exercised under -race in CI: concurrent Inc/Add/Observe on shared
	// handles must be safe and lose no updates.
	r := NewRegistry()
	c := r.Counter("hits_total")
	g := r.Gauge("level")
	h := r.Histogram("lat", []int64{1, 10, 100})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i % 150))
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	// Same-name resolution returns the same handle.
	if r.Counter("hits_total") != c {
		t.Error("re-resolving a counter returned a different handle")
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("tdat_conns_analyzed_total", "Connections analyzed.")
	r.Counter("tdat_conns_analyzed_total").Add(3)
	r.Counter("tdat_factor_dominant_total", "group", "sender").Add(2)
	r.Counter("tdat_factor_dominant_total", "group", "network").Inc()
	r.Gauge("tdat_pool_workers").Set(4)
	h := r.Histogram("tdat_stage_duration_micros", []int64{100, 1000}, "stage", "series")
	h.Observe(40)
	h.Observe(400)
	h.Observe(4000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP tdat_conns_analyzed_total Connections analyzed.
# TYPE tdat_conns_analyzed_total counter
tdat_conns_analyzed_total 3
# TYPE tdat_factor_dominant_total counter
tdat_factor_dominant_total{group="network"} 1
tdat_factor_dominant_total{group="sender"} 2
# TYPE tdat_pool_workers gauge
tdat_pool_workers 4
# TYPE tdat_stage_duration_micros histogram
tdat_stage_duration_micros_bucket{stage="series",le="100"} 1
tdat_stage_duration_micros_bucket{stage="series",le="1000"} 2
tdat_stage_duration_micros_bucket{stage="series",le="+Inf"} 3
tdat_stage_duration_micros_sum{stage="series"} 4440
tdat_stage_duration_micros_count{stage="series"} 3
# HELP tdat_stage_duration_micros_approx_quantile Bucket-interpolated quantile estimate of tdat_stage_duration_micros.
# TYPE tdat_stage_duration_micros_approx_quantile gauge
tdat_stage_duration_micros_approx_quantile{stage="series",quantile="0.5"} 550
tdat_stage_duration_micros_approx_quantile{stage="series",quantile="0.95"} 1000
tdat_stage_duration_micros_approx_quantile{stage="series",quantile="0.99"} 1000
`
	if got := buf.String(); got != want {
		t.Errorf("Prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Deterministic across repeated scrapes.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != buf.String() {
		t.Error("repeated scrapes differ")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b").Set(-2)
	r.Histogram("c", []int64{10}).Observe(7)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64            `json:"count"`
			Sum     int64            `json:"sum"`
			Buckets map[string]int64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters["a_total"] != 1 || snap.Gauges["b"] != -2 {
		t.Errorf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["c"]
	if hs.Count != 1 || hs.Sum != 7 || hs.Buckets["10"] != 1 || hs.Buckets["+Inf"] != 0 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

func TestNilFastPath(t *testing.T) {
	// Every disabled handle must be a no-op, not a crash.
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
		o *Obs
		p *Progress
	)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported non-zero values")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", DurationBuckets) != nil {
		t.Error("nil registry must resolve nil handles")
	}
	r.SetHelp("x", "y")
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if err := r.WriteJSON(io.Discard); err != nil {
		t.Errorf("nil registry WriteJSON: %v", err)
	}
	r.PublishExpvar()

	sp := o.StartSpan(StageSeries, "conn")
	sp.End()
	sp.EndN(1, 2)
	o.StageObserve(StageDecode, 5)
	o.SetSpanLog(io.Discard)
	if o.SpanLogEnabled() {
		t.Error("nil Obs claims span log enabled")
	}
	if o.SelfProfile() != nil {
		t.Error("nil Obs SelfProfile should be nil")
	}
	o.WriteSelfProfile(io.Discard)
	if o.Registry() != nil {
		t.Error("nil Obs Registry should be nil")
	}

	p.SetTotalBytes(1)
	p.SetBytesRead(1)
	p.AddRecords(1)
	p.ConnSeen()
	p.ConnStart()
	p.ConnDone()
	if p.Line() != "" {
		t.Error("nil Progress Line should be empty")
	}
	p.Run(io.Discard, time.Second)()

	// The disabled path must not allocate: that is the whole point of the
	// nil-handle design (<2% overhead with obs off).
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(1)
		s := o.StartSpan(StageSeries, "")
		s.End()
		o.StageObserve(StageDecode, 1)
	}); n != 0 {
		t.Errorf("disabled path allocates %.1f times per run, want 0", n)
	}
}

func TestSpanLogAndSelfProfile(t *testing.T) {
	o := New()
	var log bytes.Buffer
	o.SetSpanLog(&log)
	if !o.SpanLogEnabled() {
		t.Fatal("span log not enabled")
	}
	sp := o.StartSpan(StageSeries, "10.0.0.1:179->10.0.0.2:41000")
	sp.EndN(1234, 56)
	o.StageObserve(StageDecode, 10)

	line := strings.TrimSpace(log.String())
	var rec struct {
		Stage   string `json:"stage"`
		Conn    string `json:"conn"`
		StartUS int64  `json:"start_us"`
		DurUS   int64  `json:"dur_us"`
		Bytes   int64  `json:"bytes"`
		Packets int64  `json:"packets"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("span log line %q: %v", line, err)
	}
	if rec.Stage != "series" || rec.Conn != "10.0.0.1:179->10.0.0.2:41000" || rec.Bytes != 1234 || rec.Packets != 56 {
		t.Errorf("span record = %+v", rec)
	}

	shares := o.SelfProfile()
	if len(shares) != len(Stages) {
		t.Fatalf("self profile has %d rows, want %d", len(shares), len(Stages))
	}
	var total float64
	seen := map[Stage]StageShare{}
	for _, s := range shares {
		seen[s.Stage] = s
		if s.Stage != StageAckShift {
			total += s.Share
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("top-level shares sum to %f, want 1", total)
	}
	if seen[StageSeries].Count != 1 || seen[StageDecode].Count != 1 {
		t.Errorf("span counts: series=%d decode=%d, want 1 each",
			seen[StageSeries].Count, seen[StageDecode].Count)
	}
	var prof bytes.Buffer
	o.WriteSelfProfile(&prof)
	if !strings.Contains(prof.String(), "analyzer self-profile") {
		t.Errorf("self-profile output missing header:\n%s", prof.String())
	}
}

func TestProgressLine(t *testing.T) {
	p := NewProgress()
	p.SetTotalBytes(1 << 20)
	p.SetBytesRead(1 << 19)
	p.AddRecords(42)
	p.ConnSeen()
	p.ConnStart()
	line := p.Line()
	for _, want := range []string{"50%", "records=42", "1 seen", "1 in flight", "eta="} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	p.ConnDone()
	var buf bytes.Buffer
	stop := p.Run(&buf, time.Hour)
	stop()
	stop() // idempotent
	if !strings.Contains(buf.String(), "progress: ") {
		t.Errorf("Run final line missing: %q", buf.String())
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	o := New()
	o.Reg.Counter("tdat_conns_analyzed_total").Add(7)
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"tdat_conns_analyzed_total 7",
		`tdat_stage_duration_micros_bucket{stage="series",le="50"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"tdat"`) {
		t.Error("/debug/vars missing the tdat expvar")
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Error("/debug/pprof/ not serving")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "": "INFO",
		"warn": "WARN", "warning": "WARN", "error": "ERROR", "ERROR": "ERROR",
	} {
		lv, err := ParseLevel(in)
		if err != nil {
			t.Errorf("ParseLevel(%q): %v", in, err)
			continue
		}
		if lv.String() != want {
			t.Errorf("ParseLevel(%q) = %s, want %s", in, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should fail")
	}
}

// Package obs is T-DAT's observability layer: a lightweight,
// allocation-conscious metrics registry (counters, gauges, fixed-bucket
// histograms), stage-scoped tracing spans aggregated into an analyzer
// "self delay-factor" profile, progress reporting for long ingests, and the
// exposition surfaces (Prometheus text format, expvar, JSON snapshots, and
// an HTTP listener with net/http/pprof).
//
// The whole layer is disabled-by-default and nil-safe: a nil *Obs, nil
// *Registry, or nil metric handle makes every method a no-op, so the
// analysis pipeline pays only a pointer test on its hot paths when
// observability is off — the same trick the paper's measuring harness
// needs to stay trustworthy about its own overheads.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil Counter is a valid
// no-op (the disabled fast path).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil Gauge is a valid
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current level (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Buckets are defined by
// their inclusive upper bounds; an implicit +Inf bucket catches the rest.
// Observations are lock-free; exposition reads are eventually consistent
// (bucket counts may trail the total by in-flight observations), which is
// fine for monitoring. The nil Histogram is a valid no-op.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// DurationBuckets is the default bucket layout for stage and queue-wait
// durations, in microseconds: 50µs to 10s, roughly logarithmic.
var DurationBuckets = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000,
}

// newHistogram builds a Histogram with the given (sorted, deduplicated)
// upper bounds.
func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, buckets: make([]atomic.Int64, len(dedup)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bounds returns the bucket upper bounds (nil on a nil Histogram).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// metricKey identifies one metric instance: a family name plus a rendered
// label string like `stage="series"` (empty for unlabeled metrics).
type metricKey struct {
	name   string
	labels string
}

// Registry holds named metrics. Metric handles are resolved once (a locked
// map lookup) and then operated on lock-free; the hot path never touches
// the registry. The nil Registry resolves every metric to its nil no-op
// handle — the disabled fast path the benchmarks assert costs <2%.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
	help     map[string]string
}

// NewRegistry creates an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[metricKey]*Counter{},
		gauges:   map[metricKey]*Gauge{},
		hists:    map[metricKey]*Histogram{},
		help:     map[string]string{},
	}
}

// labelString renders k1,v1,k2,v2,... pairs as `k1="v1",k2="v2"`.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	return b.String()
}

// Counter returns (creating on first use) the named counter. labels are
// key,value pairs. A nil Registry returns the nil no-op Counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{name: name, labels: labelString(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{name: name, labels: labelString(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. The bounds
// of the first registration win; later calls with different bounds get the
// existing instance.
func (r *Registry) Histogram(name string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{name: name, labels: labelString(labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// SetHelp attaches a HELP line to a metric family for Prometheus
// exposition.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// sortedKeys returns map keys ordered by (name, labels).
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	return keys
}

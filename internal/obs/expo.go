package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), deterministically ordered by metric name and
// label string. Histograms emit cumulative `_bucket` lines with `le`
// labels, plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[metricKey]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[metricKey]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[metricKey]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	typed := map[string]bool{}
	header := func(name, typ string) {
		if typed[name] {
			return
		}
		typed[name] = true
		if h, ok := help[name]; ok {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	instance := func(name, labels, suffix, extra string) string {
		all := labels
		if extra != "" {
			if all != "" {
				all += ","
			}
			all += extra
		}
		if all == "" {
			return name + suffix
		}
		return name + suffix + "{" + all + "}"
	}

	for _, k := range sortedKeys(counters) {
		header(k.name, "counter")
		fmt.Fprintf(w, "%s %d\n", instance(k.name, k.labels, "", ""), counters[k].Value())
	}
	for _, k := range sortedKeys(gauges) {
		header(k.name, "gauge")
		fmt.Fprintf(w, "%s %d\n", instance(k.name, k.labels, "", ""), gauges[k].Value())
	}
	for _, k := range sortedKeys(hists) {
		header(k.name, "histogram")
		h := hists[k]
		cum := int64(0)
		counts := h.BucketCounts()
		for i, bound := range h.Bounds() {
			cum += counts[i]
			le := `le="` + strconv.FormatInt(bound, 10) + `"`
			fmt.Fprintf(w, "%s %d\n", instance(k.name, k.labels, "_bucket", le), cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "%s %d\n", instance(k.name, k.labels, "_bucket", `le="+Inf"`), cum)
		fmt.Fprintf(w, "%s %d\n", instance(k.name, k.labels, "_sum", ""), h.Sum())
		fmt.Fprintf(w, "%s %d\n", instance(k.name, k.labels, "_count", ""), h.Count())
	}
	// Approximate quantile summaries, derived from the buckets above by
	// linear interpolation. Emitted as a separate gauge family (`_approx_
	// quantile`) so the histogram family itself stays scrape-compatible.
	for _, k := range sortedKeys(hists) {
		h := hists[k]
		if h.Count() == 0 {
			continue
		}
		qname := k.name + "_approx_quantile"
		if _, ok := help[qname]; !ok {
			help[qname] = "Bucket-interpolated quantile estimate of " + k.name + "."
		}
		header(qname, "gauge")
		for _, q := range summaryQuantiles {
			ql := `quantile="` + strconv.FormatFloat(q, 'g', -1, 64) + `"`
			fmt.Fprintf(w, "%s %s\n", instance(qname, k.labels, "", ql),
				strconv.FormatFloat(h.Quantile(q), 'g', -1, 64))
		}
	}
	return nil
}

// summaryQuantiles are the quantiles rendered as approximate summary lines
// alongside each histogram's bucket exposition.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// Quantile estimates the q-quantile (0..1) from the bucket counts by linear
// interpolation inside the covering bucket. Values landing in the +Inf
// bucket clamp to the last finite bound (there is no upper edge to
// interpolate toward). Returns 0 with no observations or on a nil
// Histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	count := h.Count()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(count)
	counts := h.BucketCounts()
	bounds := h.Bounds()
	cum := float64(0)
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the last finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return float64(bounds[len(bounds)-1])
		}
		lo := float64(0)
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := float64(bounds[i])
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return float64(bounds[len(bounds)-1])
}

// histSnapshot is the JSON form of one histogram.
type histSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets"`
}

// Snapshot returns a point-in-time copy of every metric, keyed by
// `name{labels}`, suitable for JSON serialization of an offline run.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	out := map[string]any{}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := func(k metricKey) string {
		if k.labels == "" {
			return k.name
		}
		return k.name + "{" + k.labels + "}"
	}
	counters := map[string]int64{}
	for k, c := range r.counters {
		counters[key(k)] = c.Value()
	}
	gauges := map[string]int64{}
	for k, g := range r.gauges {
		gauges[key(k)] = g.Value()
	}
	hists := map[string]histSnapshot{}
	for k, h := range r.hists {
		hs := histSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: map[string]int64{}}
		counts := h.BucketCounts()
		for i, b := range h.Bounds() {
			hs.Buckets[strconv.FormatInt(b, 10)] = counts[i]
		}
		hs.Buckets["+Inf"] = counts[len(counts)-1]
		hists[key(k)] = hs
	}
	out["counters"] = counters
	out["gauges"] = gauges
	out["histograms"] = hists
	return out
}

// WriteJSON writes an indented JSON snapshot of the registry — the offline
// analogue of a /metrics scrape (maps serialize with sorted keys, so the
// output is deterministic for a fixed metric state).
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		// A disabled registry still emits a valid (empty) snapshot, matching
		// what Snapshot would serialize.
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// expvar integration: the process-wide "tdat" var serves the current
// registry's snapshot. Publishing is process-global and idempotent; the
// most recently exposed registry wins (one analyzer run per process in
// practice).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar exposes r as the expvar variable "tdat" (visible on
// /debug/vars). Safe to call repeatedly and from tests.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("tdat", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stage names one pipeline stage. The analyzer's stages mirror the paper's
// pipeline figure: ingest decoding, connection demultiplexing, sniffer
// ACK shifting, event-series generation, transfer-end estimation (stream
// reassembly + MCT), delay-factor classification, the known-problem
// detectors, and the ordered merge of per-connection reports.
type Stage string

// The instrumented stages.
const (
	StageDecode   Stage = "decode"   // pcap record → packet
	StageDemux    Stage = "demux"    // packet → connection grouping
	StageAckShift Stage = "ackshift" // sniffer-location compensation (⊂ series)
	StageSeries   Stage = "series"   // event-series generation
	StageMCT      Stage = "mct"      // reassembly + transfer-end estimation
	StageFactors  Stage = "factors"  // delay-ratio classification
	StageDetect   Stage = "detect"   // known-problem detectors
	StageMerge    Stage = "merge"    // ordered report merge
)

// Stages lists the stages in pipeline order. StageAckShift runs inside
// StageSeries (its time is a subset of the series time), so the self-profile
// excludes it from the share denominator.
var Stages = []Stage{
	StageDecode, StageDemux, StageAckShift, StageSeries, StageMCT,
	StageFactors, StageDetect, StageMerge,
}

// Obs bundles one run's observability state: the metrics registry, the
// per-stage duration histograms behind the tracing spans, the optional
// span log, and the progress tracker. A nil *Obs disables everything at
// the cost of one pointer test per instrumentation site.
type Obs struct {
	// Reg is the run's metrics registry.
	Reg *Registry
	// Progress tracks ingest progress for long runs.
	Progress *Progress

	start     time.Time
	stageHist map[Stage]*Histogram

	spanMu    sync.Mutex
	spanW     io.Writer
	keepSpans bool
	spans     []SpanRecord
}

// New creates an enabled Obs with a fresh registry, per-stage histograms,
// and a progress tracker.
func New() *Obs {
	o := &Obs{
		Reg:       NewRegistry(),
		Progress:  NewProgress(),
		start:     time.Now(),
		stageHist: make(map[Stage]*Histogram, len(Stages)),
	}
	o.Reg.SetHelp("tdat_stage_duration_micros", "Wall time per pipeline stage execution.")
	for _, st := range Stages {
		o.stageHist[st] = o.Reg.Histogram("tdat_stage_duration_micros", DurationBuckets, "stage", string(st))
	}
	return o
}

// SetSpanLog directs per-span records (one JSON object per line, schema
// SpanSchemaVersion) to w. Writes are serialized internally; w need not be
// concurrency-safe.
func (o *Obs) SetSpanLog(w io.Writer) {
	if o == nil {
		return
	}
	o.spanMu.Lock()
	o.spanW = w
	o.spanMu.Unlock()
}

// SpanLogEnabled reports whether span records are being recorded (logged
// via SetSpanLog or retained via KeepSpans) — callers use it to skip
// building span labels when nobody will read them.
func (o *Obs) SpanLogEnabled() bool {
	if o == nil {
		return false
	}
	o.spanMu.Lock()
	defer o.spanMu.Unlock()
	return o.spanW != nil || o.keepSpans
}

// StageObserve records a stage duration directly (for per-record stages
// like decode, where a full span per packet would be wasteful).
func (o *Obs) StageObserve(stage Stage, micros int64) {
	if o == nil {
		return
	}
	o.stageHist[stage].Observe(micros)
}

// Span is one in-flight stage execution. The zero Span (from a nil Obs) is
// a no-op, so instrumented code needs no nil checks around End.
type Span struct {
	o     *Obs
	stage Stage
	label string
	start time.Time
}

// StartSpan opens a span for stage. label identifies the unit of work
// (typically the connection 4-tuple) and appears only in the span log;
// pass "" when SpanLogEnabled is false to avoid building it.
func (o *Obs) StartSpan(stage Stage, label string) Span {
	if o == nil {
		return Span{}
	}
	return Span{o: o, stage: stage, label: label, start: time.Now()}
}

// End closes the span, recording its duration.
func (s Span) End() { s.EndN(0, 0) }

// EndN closes the span, recording its duration plus the bytes and packets
// it processed (surfaced in the span log).
func (s Span) EndN(bytes, packets int64) {
	if s.o == nil {
		return
	}
	dur := time.Since(s.start).Microseconds()
	s.o.stageHist[s.stage].Observe(dur)
	startUS := s.start.Sub(s.o.start).Microseconds()
	s.o.spanMu.Lock()
	if w := s.o.spanW; w != nil {
		fmt.Fprintf(w, `{"v":%d,"stage":%q,"conn":%q,"start_us":%d,"dur_us":%d,"bytes":%d,"packets":%d}`+"\n",
			SpanSchemaVersion, s.stage, s.label, startUS, dur, bytes, packets)
	}
	if s.o.keepSpans {
		s.o.spans = append(s.o.spans, SpanRecord{
			V: SpanSchemaVersion, Stage: s.stage, Conn: s.label,
			StartMicros: startUS, DurMicros: dur, Bytes: bytes, Packets: packets,
		})
	}
	s.o.spanMu.Unlock()
}

// StageShare is one row of the analyzer self-profile.
type StageShare struct {
	Stage Stage
	// Total is the summed wall time of the stage across all workers (so
	// the totals can exceed the run's wall clock under parallelism).
	Total time.Duration
	// Count is the number of recorded executions.
	Count int64
	// Share is Total over the sum of all top-level stages — the analyzer's
	// own delay-ratio vector. StageAckShift runs inside StageSeries and is
	// excluded from the denominator.
	Share float64
}

// SelfProfile aggregates the per-stage histograms into the analyzer's "self
// delay-factor" breakdown, in pipeline order.
func (o *Obs) SelfProfile() []StageShare {
	if o == nil {
		return nil
	}
	var denom int64
	for _, st := range Stages {
		if st == StageAckShift {
			continue
		}
		denom += o.stageHist[st].Sum()
	}
	out := make([]StageShare, 0, len(Stages))
	for _, st := range Stages {
		h := o.stageHist[st]
		share := 0.0
		if denom > 0 {
			share = float64(h.Sum()) / float64(denom)
		}
		out = append(out, StageShare{
			Stage: st,
			Total: time.Duration(h.Sum()) * time.Microsecond,
			Count: h.Count(),
			Share: share,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// WriteSelfProfile renders the self-profile like the paper renders a
// delay-ratio vector: each stage's share of the analyzer's total stage
// time, largest first.
func (o *Obs) WriteSelfProfile(w io.Writer) {
	if o == nil {
		return
	}
	shares := o.SelfProfile()
	var total time.Duration
	for _, s := range shares {
		if s.Stage != StageAckShift {
			total += s.Total
		}
	}
	fmt.Fprintf(w, "analyzer self-profile (%.3fs total stage time, wall %.3fs):\n",
		total.Seconds(), time.Since(o.start).Seconds())
	for _, s := range shares {
		nested := ""
		if s.Stage == StageAckShift {
			nested = "  (within series)"
		}
		fmt.Fprintf(w, "  %-8s %8.3fs  %5.1f%%  %d span(s)%s\n",
			s.Stage, s.Total.Seconds(), s.Share*100, s.Count, nested)
	}
}

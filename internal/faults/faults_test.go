package faults

import (
	"bytes"
	"testing"

	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/tracegen"
)

// baseRecords materializes a small genuine transfer once per test binary —
// the clean substrate every fault corrupts.
func baseRecords(t *testing.T) []pcapio.Record {
	t.Helper()
	trace := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 11, Routes: 400})
	var recs []pcapio.Record
	for _, c := range trace.Captures {
		frame, err := c.Pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, pcapio.Record{TimeMicros: c.Time, Data: frame})
	}
	if len(recs) < 20 {
		t.Fatalf("substrate too small: %d records", len(recs))
	}
	return recs
}

func TestApplyIsDeterministicAndPure(t *testing.T) {
	recs := baseRecords(t)
	before := Serialize(recs)
	chain := []Fault{
		FlipBytes(0.3, 2, RegionAny),
		DuplicateRecords(0.2),
		ReorderRecords(0.2, 3),
		ClockRegression(7, 1_000),
	}
	a := Serialize(Apply(42, recs, chain...))
	b := Serialize(Apply(42, recs, chain...))
	if !bytes.Equal(a, b) {
		t.Error("same seed and chain produced different bytes")
	}
	if c := Serialize(Apply(43, recs, chain...)); bytes.Equal(a, c) {
		t.Error("different seeds produced identical damage")
	}
	if after := Serialize(recs); !bytes.Equal(before, after) {
		t.Error("Apply mutated its input records")
	}
}

func TestSerializeRoundTrips(t *testing.T) {
	recs := baseRecords(t)
	got, err := pcapio.ReadAll(bytes.NewReader(Serialize(recs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-tripped %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].TimeMicros != recs[i].TimeMicros || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestSnapLenClipsButKeepsOrigLen(t *testing.T) {
	recs := Apply(1, baseRecords(t), SnapLen(40))
	for i, r := range recs {
		if len(r.Data) > 40 {
			t.Fatalf("record %d still carries %d bytes", i, len(r.Data))
		}
		if len(r.Data) == 40 && r.OrigLen <= 40 {
			t.Fatalf("record %d lost its original wire length", i)
		}
	}
}

func TestFlipBytesAimsAtRegion(t *testing.T) {
	recs := baseRecords(t)
	flipped := Apply(5, recs, FlipBytes(1, 1, RegionPayload))
	for i := range recs {
		orig, err := packet.Decode(recs[i].Data)
		if err != nil || len(orig.Payload) == 0 {
			continue
		}
		headerLen := len(recs[i].Data) - len(orig.Payload)
		if !bytes.Equal(recs[i].Data[:headerLen], flipped[i].Data[:headerLen]) {
			t.Fatalf("record %d: payload-aimed flip hit the headers", i)
		}
	}
}

func TestCorruptBGPLengthBreaksFraming(t *testing.T) {
	recs := Apply(2, baseRecords(t), CorruptBGPLength(1))
	damaged := 0
	for _, r := range recs {
		p, err := packet.Decode(r.Data)
		if err != nil || len(p.Payload) < 19 {
			continue
		}
		if p.Payload[16] == 0xFF && p.Payload[17] == 0xF0 {
			damaged++
		}
	}
	if damaged == 0 {
		t.Error("no BGP length fields corrupted at frac=1")
	}
}

func TestClockRegressionStepsBack(t *testing.T) {
	recs := Apply(3, baseRecords(t), ClockRegression(5, 2_000))
	regressed := false
	for i := 1; i < len(recs); i++ {
		if recs[i].TimeMicros < recs[i-1].TimeMicros {
			regressed = true
			break
		}
	}
	if !regressed {
		t.Error("time axis stayed monotonic")
	}
}

func TestOrphanConnectionsDropsOneDirection(t *testing.T) {
	recs := Apply(4, baseRecords(t), OrphanConnections(1))
	srcs := map[string]bool{}
	for _, r := range recs {
		p, err := packet.Decode(r.Data)
		if err != nil {
			continue
		}
		srcs[p.IP.Src.String()] = true
	}
	if len(srcs) != 1 {
		t.Errorf("surviving directions = %v, want exactly one", srcs)
	}
}

func TestTruncateInRecordCutsMidRecord(t *testing.T) {
	recs := baseRecords(t)
	file := Serialize(recs)
	cut := TruncateInRecord(file, 3)
	if len(cut) >= len(file) {
		t.Fatal("truncation removed nothing")
	}
	got, err := pcapio.ReadAll(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("mid-record cut read cleanly")
	}
	if len(got) != 3 {
		t.Errorf("salvaged %d records before the cut, want 3", len(got))
	}
}

// Command gen (re)generates the committed adversarial trace corpus: small
// golden pcaps, each carrying one damage class a real sniffer capture can
// arrive with, plus fuzz seed inputs distilled from them. Run from the
// repository root:
//
//	go run ./internal/faults/gen
//
// Everything is derived from a fixed-seed simulator trace through the
// deterministic faults package, so regeneration is byte-stable: the output
// only changes when the generator (or a package it leans on) changes. The
// corpus is committed; tests read it from testdata and never regenerate.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"tdat/internal/faults"
	"tdat/internal/packet"
	"tdat/internal/pcapio"
	"tdat/internal/tracegen"
)

const (
	corpusDir     = "internal/pcapio/testdata/adversarial"
	pcapioFuzzDir = "internal/pcapio/testdata/fuzz/FuzzReader"
	bgpFuzzDir    = "internal/bgp/testdata/fuzz/FuzzParse"
	packetFuzzDir = "internal/packet/testdata/fuzz/FuzzDecode"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// A small but genuine table transfer: real handshake, real BGP UPDATE
	// payloads, real FIN — the clean substrate every damage class corrupts.
	trace := tracegen.Run(tracegen.Scenario{Kind: tracegen.KindClean, Seed: 3, Routes: 900})
	var recs []pcapio.Record
	for _, c := range trace.Captures {
		frame, err := c.Pkt.Marshal()
		if err != nil {
			return fmt.Errorf("marshaling capture frame: %w", err)
		}
		recs = append(recs, pcapio.Record{TimeMicros: c.Time, Data: frame})
	}
	clean := faults.Serialize(recs)

	// The five damage classes of the golden corpus (one file each).
	corpus := map[string][]byte{
		// The capture stopped ten bytes into the global header: a full disk
		// at the worst moment. The magic is intact, so this is recognizably
		// a pcap — just an empty one.
		"truncated_header.pcap": faults.TruncateFileAt(clean, 10),
		// The capture stopped mid-way through a record's bytes.
		"truncated_record.pcap": faults.TruncateInRecord(clean, len(recs)/2),
		// tcpdump -s snapping taken to its pathological limit: the header
		// declares snaplen 0 and every record carries zero captured bytes.
		"zero_snaplen.pcap": faults.RewriteSnapLen(
			faults.Serialize(faults.Apply(1, recs, faults.SnapLen(0))), 0),
		// BGP message headers lying about their length mid-transfer.
		"corrupt_bgp_length.pcap": faults.Serialize(
			faults.Apply(2, recs, faults.CorruptBGPLength(0.5))),
		// The sniffer clock stepping backwards during the capture.
		"clock_regression.pcap": faults.Serialize(
			faults.Apply(3, recs, faults.ClockRegression(10, 3_000_000))),
	}
	// Sorted order keeps the progress log byte-stable run to run.
	names := make([]string, 0, len(corpus))
	for name := range corpus {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeFile(filepath.Join(corpusDir, name), corpus[name]); err != nil {
			return err
		}
	}

	// Fuzz seeds: whole damaged files for the pcap reader…
	for i, name := range []string{"truncated_record.pcap", "zero_snaplen.pcap"} {
		if err := writeFuzzSeed(pcapioFuzzDir, fmt.Sprintf("adversarial-%d", i), corpus[name]); err != nil {
			return err
		}
	}
	// …BGP payload bytes with corrupt framing for the message parser…
	damaged := faults.Apply(2, recs, faults.CorruptBGPLength(0.5))
	seeded := 0
	for _, r := range damaged {
		p, err := packet.Decode(r.Data)
		if err != nil || len(p.Payload) < 19 {
			continue
		}
		if err := writeFuzzSeed(bgpFuzzDir, fmt.Sprintf("adversarial-%d", seeded), p.Payload); err != nil {
			return err
		}
		if seeded++; seeded == 4 {
			break
		}
	}
	// …and bit-flipped frames for the packet decoder.
	flipped := faults.Apply(4, recs, faults.FlipBytes(1, 4, faults.RegionIPHeader),
		faults.FlipBytes(1, 4, faults.RegionTCPHeader))
	for i := 0; i < 4 && i*7 < len(flipped); i++ {
		if err := writeFuzzSeed(packetFuzzDir, fmt.Sprintf("adversarial-%d", i), flipped[i*7].Data); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	fmt.Printf("%s (%d bytes)\n", path, len(data))
	return os.WriteFile(path, data, 0o644)
}

// writeFuzzSeed writes one input in the go fuzz corpus file format.
func writeFuzzSeed(dir, name string, data []byte) error {
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	return writeFile(filepath.Join(dir, name), []byte(content))
}

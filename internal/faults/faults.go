// Package faults deterministically corrupts packet captures — the
// adversarial counterpart of tracegen. Real sniffer captures (paper §III-A)
// arrive truncated mid-record, snapped, bit-flipped, duplicated, reordered,
// clock-jumped, and half-captured; the clean simulator traces never
// exercise any of that. This package wraps a record stream (or a serialized
// pcap byte stream) in composable, seedable corruptions so tests, the
// adversarial golden corpus, and fuzz seeds can state exactly which damage
// the analysis pipeline must survive.
//
// Two layers compose:
//
//   - Record faults (Fault) transform a decoded []pcapio.Record — clipping,
//     flipping, duplicating, reordering, clock damage, orphaned
//     half-connections. Apply chains them under one seed.
//   - File faults operate on serialized pcap bytes — truncation inside a
//     header or record, snap-length header rewrites — the damage that
//     breaks pcap framing itself.
//
// Everything is pure: inputs are deep-copied, so the same seed and fault
// chain always yields byte-identical output.
package faults

import (
	"encoding/binary"
	"math/rand"
	"net/netip"

	"tdat/internal/packet"
	"tdat/internal/pcapio"
)

// Fault is one composable record-stream corruption. It may mutate and/or
// reshape recs (which Apply has deep-copied) and returns the damaged
// stream. Faults draw all randomness from rnd so a chain is reproducible
// from its seed.
type Fault func(rnd *rand.Rand, recs []pcapio.Record) []pcapio.Record

// Apply deep-copies recs and runs the fault chain over it under one seeded
// RNG. The input is never modified.
func Apply(seed int64, recs []pcapio.Record, faults ...Fault) []pcapio.Record {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]pcapio.Record, len(recs))
	for i, r := range recs {
		out[i] = pcapio.Record{
			TimeMicros: r.TimeMicros,
			OrigLen:    r.OrigLen,
			Data:       append([]byte(nil), r.Data...),
		}
	}
	for _, f := range faults {
		out = f(rnd, out)
	}
	return out
}

// Serialize writes records to classic pcap bytes (little-endian, Ethernet),
// preserving snapped OrigLen, so file faults and golden corpus traces can
// be produced from a damaged record stream.
func Serialize(recs []pcapio.Record) []byte {
	var buf writerBuf
	w := pcapio.NewWriter(&buf)
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			panic("faults: serialize: " + err.Error()) // in-memory writes cannot fail
		}
	}
	if err := w.Flush(); err != nil {
		panic("faults: serialize: " + err.Error())
	}
	return buf.b
}

// writerBuf is a minimal in-memory io.Writer.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// --- Record faults ---

// SnapLen clips every record's captured bytes to snap while keeping the
// original wire length — tcpdump's "-s" snapping, which truncates TCP
// payloads (and with tiny snap values, the headers themselves).
func SnapLen(snap int) Fault {
	return func(_ *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		for i := range recs {
			if len(recs[i].Data) > snap {
				if recs[i].OrigLen == 0 {
					recs[i].OrigLen = len(recs[i].Data)
				}
				recs[i].Data = recs[i].Data[:snap]
			}
		}
		return recs
	}
}

// Region selects where FlipBytes aims inside a frame.
type Region int

// Flip regions.
const (
	// RegionAny flips anywhere in the captured bytes.
	RegionAny Region = iota
	// RegionIPHeader flips inside the IPv4 header.
	RegionIPHeader
	// RegionTCPHeader flips inside the TCP header.
	RegionTCPHeader
	// RegionPayload flips inside the TCP payload (the BGP bytes).
	RegionPayload
)

// regionSpan locates region within a frame, falling back to the whole frame
// when the packet does not decode far enough to aim.
func regionSpan(frame []byte, region Region) (int, int) {
	lo, hi := 0, len(frame)
	if region == RegionAny || len(frame) == 0 {
		return lo, hi
	}
	p, err := packet.Decode(frame)
	if err != nil {
		return lo, hi
	}
	ipStart := packet.EthernetHeaderLen
	tcpStart := len(frame) - len(p.Payload) - 20 // ≥ data offset start; good enough to aim
	switch region {
	case RegionIPHeader:
		lo, hi = ipStart, ipStart+packet.IPv4HeaderLen
	case RegionTCPHeader:
		lo, hi = tcpStart, len(frame)-len(p.Payload)
	case RegionPayload:
		lo, hi = len(frame)-len(p.Payload), len(frame)
	}
	if lo < 0 || hi > len(frame) || lo >= hi {
		return 0, len(frame)
	}
	return lo, hi
}

// FlipBytes flips flips random bits inside region of each selected record
// (each record is hit independently with probability frac) — checksum
// garbage, damaged lengths, scrambled flags.
func FlipBytes(frac float64, flips int, region Region) Fault {
	return func(rnd *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		for i := range recs {
			if rnd.Float64() >= frac || len(recs[i].Data) == 0 {
				continue
			}
			lo, hi := regionSpan(recs[i].Data, region)
			for f := 0; f < flips; f++ {
				recs[i].Data[lo+rnd.Intn(hi-lo)] ^= byte(1 << rnd.Intn(8))
			}
		}
		return recs
	}
}

// CorruptBGPLength overwrites the 2-byte length field of the first BGP
// message header found in each selected record's payload with a value far
// beyond the 4096-byte protocol maximum, so stream framing meets a lying
// length mid-transfer.
func CorruptBGPLength(frac float64) Fault {
	return func(rnd *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		for i := range recs {
			if rnd.Float64() >= frac {
				continue
			}
			p, err := packet.Decode(recs[i].Data)
			if err != nil || len(p.Payload) < 19 {
				continue
			}
			// The payload starts at a message boundary for the first data
			// packet of a flight; damaging the bytes at the header's length
			// offset corrupts framing wherever the boundary actually falls.
			off := len(recs[i].Data) - len(p.Payload)
			binary.BigEndian.PutUint16(recs[i].Data[off+16:off+18], 0xFFF0)
		}
		return recs
	}
}

// DuplicateRecords re-delivers each selected record immediately after
// itself — the capture-side duplication a span port or a looped sniffer
// feed produces.
func DuplicateRecords(frac float64) Fault {
	return func(rnd *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		out := make([]pcapio.Record, 0, len(recs)+len(recs)/4)
		for _, r := range recs {
			out = append(out, r)
			if rnd.Float64() < frac {
				dup := r
				dup.Data = append([]byte(nil), r.Data...)
				out = append(out, dup)
			}
		}
		return out
	}
}

// ReorderRecords swaps each selected record with a neighbor up to maxDist
// positions ahead, leaving timestamps attached to their packets — so the
// stream is no longer in time order, the way merged multi-queue captures
// misorder.
func ReorderRecords(frac float64, maxDist int) Fault {
	if maxDist < 1 {
		maxDist = 1
	}
	return func(rnd *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		for i := range recs {
			if rnd.Float64() >= frac {
				continue
			}
			j := i + 1 + rnd.Intn(maxDist)
			if j < len(recs) {
				recs[i], recs[j] = recs[j], recs[i]
			}
		}
		return recs
	}
}

// ClockRegression steps the sniffer clock back by back microseconds at
// every k-th record (NTP step-backs during long captures), leaving all
// later timestamps shifted — the capture's time axis is no longer
// monotonic.
func ClockRegression(every int, back int64) Fault {
	if every < 1 {
		every = 1
	}
	return func(_ *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		var shift int64
		for i := range recs {
			if i > 0 && i%every == 0 {
				shift += back
			}
			recs[i].TimeMicros -= shift
		}
		return recs
	}
}

// ClockJump adds a single forward jump of jump microseconds starting at
// record index at — a suspended VM or a stepped clock mid-capture.
func ClockJump(at int, jump int64) Fault {
	return func(_ *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		for i := at; i >= 0 && i < len(recs); i++ {
			recs[i].TimeMicros += jump
		}
		return recs
	}
}

// OrphanConnections drops every record of one randomly chosen direction
// for each selected 4-tuple — the half-connections a unidirectional span
// or an asymmetric route leaves in a capture. Undecodable records pass
// through untouched.
func OrphanConnections(frac float64) Fault {
	type halfKey struct {
		a, b netip.AddrPort
	}
	return func(rnd *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		// Decide per canonical tuple, on first sight, whether to orphan it
		// and which direction survives.
		type verdict struct {
			orphan   bool
			keepFrom netip.AddrPort
		}
		seen := map[halfKey]verdict{}
		out := recs[:0]
		for _, r := range recs {
			p, err := packet.Decode(r.Data)
			if err != nil {
				out = append(out, r)
				continue
			}
			src := netip.AddrPortFrom(p.IP.Src, p.TCP.SrcPort)
			dst := netip.AddrPortFrom(p.IP.Dst, p.TCP.DstPort)
			k := halfKey{a: src, b: dst}
			if dst.Compare(src) < 0 {
				k = halfKey{a: dst, b: src}
			}
			v, ok := seen[k]
			if !ok {
				v.orphan = rnd.Float64() < frac
				v.keepFrom = k.a
				if rnd.Intn(2) == 0 {
					v.keepFrom = k.b
				}
				seen[k] = v
			}
			if v.orphan && src != v.keepFrom {
				continue
			}
			out = append(out, r)
		}
		return out
	}
}

// TruncateTail drops the trailing frac of the record stream — the capture
// stopped before the connections finished, so nothing past the cut (FINs
// included) was ever seen.
func TruncateTail(frac float64) Fault {
	return func(_ *rand.Rand, recs []pcapio.Record) []pcapio.Record {
		keep := int(float64(len(recs)) * (1 - frac))
		if keep < 0 {
			keep = 0
		}
		return recs[:keep]
	}
}

// --- File faults (serialized pcap bytes) ---

// TruncateFileAt cuts the serialized file after n bytes. Cutting inside the
// 24-byte global header yields the "truncated header" damage class;
// anywhere later, a capture that ends mid-record.
func TruncateFileAt(file []byte, n int) []byte {
	if n > len(file) {
		n = len(file)
	}
	return append([]byte(nil), file[:n]...)
}

// TruncateInRecord cuts the file mid-way through the data of record index
// (0-based), exactly the damage a full sniffer disk leaves. It panics if
// the file does not contain that record — corpus generation is the only
// caller and must hand it a healthy file.
func TruncateInRecord(file []byte, index int) []byte {
	off := 24
	for i := 0; ; i++ {
		if off+16 > len(file) {
			panic("faults: TruncateInRecord: record out of range")
		}
		capLen := int(binary.LittleEndian.Uint32(file[off+8 : off+12]))
		if i == index {
			return TruncateFileAt(file, off+16+capLen/2)
		}
		off += 16 + capLen
	}
}

// RewriteSnapLen overwrites the global header's snap length field — the
// zero-snaplen damage class pairs this with SnapLen(0)-clipped records.
func RewriteSnapLen(file []byte, snap uint32) []byte {
	out := append([]byte(nil), file...)
	if len(out) >= 24 {
		binary.LittleEndian.PutUint32(out[16:20], snap)
	}
	return out
}

package ackshift

import (
	"testing"

	"tdat/internal/flows"
)

// conn builds a connection skeleton with a fixed RTT and the given events.
func conn(rtt Micros, data []flows.DataEvent, acks []flows.AckEvent) *flows.Connection {
	c := &flows.Connection{Data: data, Acks: acks}
	c.Profile.RTT = rtt
	return c
}

func TestShiftMovesAckBeforeReleasedData(t *testing.T) {
	// ACK at t=100 releases data seen at t=10100 (one 10 ms RTT later).
	rtt := Micros(10_000)
	data := []flows.DataEvent{
		{Time: 10_100, Seq: 1460, SeqEnd: 2920, Len: 1460, Kind: flows.DataNew},
	}
	acks := []flows.AckEvent{
		{Time: 100, Ack: 1460, Window: 65535},
	}
	shifted := Shift(conn(rtt, data, acks), Config{})
	if got := shifted[0].Time; got != 10_099 {
		t.Errorf("shifted ack time = %d, want 10099 (just before the release)", got)
	}
}

func TestShiftUsesFlightMinimum(t *testing.T) {
	// Two ACKs in one flight; the first has the tighter (smaller) d2. Both
	// must shift by the same amount.
	rtt := Micros(10_000)
	data := []flows.DataEvent{
		{Time: 10_000, Seq: 1000, SeqEnd: 2000, Len: 1000, Kind: flows.DataNew},
		{Time: 13_000, Seq: 2000, SeqEnd: 3000, Len: 1000, Kind: flows.DataNew},
	}
	acks := []flows.AckEvent{
		{Time: 100, Ack: 500, Window: 65535},  // d2 = 9900 to the 10 ms data
		{Time: 300, Ack: 1000, Window: 65535}, // d2 = 9700 — the flight minimum
	}
	shifted := Shift(conn(rtt, data, acks), Config{})
	d0 := shifted[0].Time - 100
	d1 := shifted[1].Time - 300
	if d0 != d1 {
		t.Errorf("flight members shifted differently: %d vs %d", d0, d1)
	}
	if d0 != 9699 {
		t.Errorf("shift = %d, want min d2 - 1 = 9699", d0)
	}
}

func TestSeparateFlightsShiftIndependently(t *testing.T) {
	rtt := Micros(10_000)
	data := []flows.DataEvent{
		{Time: 10_000, Seq: 1000, SeqEnd: 2000, Len: 1000, Kind: flows.DataNew},
		{Time: 40_000, Seq: 2000, SeqEnd: 3000, Len: 1000, Kind: flows.DataNew},
	}
	// Second ACK is 30 ms after the first: a new flight (gap > RTT/2).
	acks := []flows.AckEvent{
		{Time: 100, Ack: 1000, Window: 65535},
		{Time: 30_100, Ack: 2000, Window: 65535},
	}
	shifted := Shift(conn(rtt, data, acks), Config{})
	if shifted[0].Time != 10_000-1 {
		t.Errorf("first flight shifted to %d", shifted[0].Time)
	}
	if shifted[1].Time != 40_000-1 {
		t.Errorf("second flight shifted to %d", shifted[1].Time)
	}
}

func TestNoShiftWithoutRTT(t *testing.T) {
	data := []flows.DataEvent{{Time: 10_000, Seq: 0, SeqEnd: 1000, Len: 1000, Kind: flows.DataNew}}
	acks := []flows.AckEvent{{Time: 100, Ack: 0, Window: 65535}}
	shifted := Shift(conn(0, data, acks), Config{})
	if shifted[0].Time != 100 {
		t.Errorf("RTT-less connection was shifted: %d", shifted[0].Time)
	}
}

func TestNoShiftWhenSenderIdle(t *testing.T) {
	// The data following the ACK is far beyond 2×RTT: app-limited sender,
	// no causal release — the ACK must stay put.
	rtt := Micros(10_000)
	data := []flows.DataEvent{
		{Time: 500_000, Seq: 1000, SeqEnd: 2000, Len: 1000, Kind: flows.DataNew},
	}
	acks := []flows.AckEvent{{Time: 100, Ack: 1000, Window: 65535}}
	shifted := Shift(conn(rtt, data, acks), Config{})
	if shifted[0].Time != 100 {
		t.Errorf("idle-sender ACK shifted to %d", shifted[0].Time)
	}
}

func TestDupAcksDoNotDriveShift(t *testing.T) {
	rtt := Micros(10_000)
	data := []flows.DataEvent{
		// Retransmission arrives soon after the dups; it must not be used
		// as a release target.
		{Time: 2_000, Seq: 0, SeqEnd: 1000, Len: 1000, Kind: flows.DataRetransmit},
		{Time: 10_100, Seq: 1000, SeqEnd: 2000, Len: 1000, Kind: flows.DataNew},
	}
	acks := []flows.AckEvent{
		{Time: 100, Ack: 0, Window: 65535, Dup: true},
		{Time: 200, Ack: 0, Window: 65535, Dup: true},
	}
	shifted := Shift(conn(rtt, data, acks), Config{})
	if shifted[0].Time != 100 || shifted[1].Time != 200 {
		t.Errorf("dup acks shifted: %d, %d", shifted[0].Time, shifted[1].Time)
	}
}

func TestOriginalAcksUntouched(t *testing.T) {
	rtt := Micros(10_000)
	data := []flows.DataEvent{{Time: 10_100, Seq: 1460, SeqEnd: 2920, Len: 1460, Kind: flows.DataNew}}
	acks := []flows.AckEvent{{Time: 100, Ack: 1460, Window: 65535}}
	c := conn(rtt, data, acks)
	_ = Shift(c, Config{})
	if c.Acks[0].Time != 100 {
		t.Error("Shift mutated the connection's own ack slice")
	}
}

func TestEmptyInputsSafe(t *testing.T) {
	c := conn(10_000, nil, nil)
	if got := Shift(c, Config{}); len(got) != 0 {
		t.Errorf("empty shift = %v", got)
	}
}

// Package ackshift compensates for the sniffer's location (paper §III-B1).
//
// The sniffer sits next to the receiver, so ACKs are captured almost when
// they are generated, while the sender perceives them roughly one upstream
// delay (d2) later — and the data packets those ACKs release appear at the
// sniffer a further d2 after that. To make the trace approximate the
// sender's viewpoint, ACKs are shifted forward in time: they are grouped
// into back-to-back flights, each ACK's release delay d2 is estimated from
// the first data packet its window release explains, and the whole flight
// is shifted by the flight's minimum (most precise) d2.
package ackshift

import (
	"tdat/internal/flows"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// Config tunes flight grouping; zero values select defaults.
type Config struct {
	// FlightGap separates ACK flights: a new flight starts when the
	// inter-ACK spacing exceeds this fraction of the RTT (default 1/2).
	// Expressed as a divisor to stay integral: gap > RTT/FlightGapDiv.
	FlightGapDiv int
	// MaxShift caps a flight's shift at this multiple of RTT ×1000 — i.e.
	// a cap of 1.5×RTT uses MaxShiftRTTMillis = 1500. Shifts beyond it mean
	// the association was spurious (sender idle), so the flight stays put.
	//
	// The legitimate release delay is one upstream delay to reach the
	// sender plus one upstream delay for the released data to come back —
	// exactly the handshake RTT. The default of 1.5×RTT leaves half an RTT
	// of sender-processing slack; anything slower is the application (or a
	// timer) deciding to send, not this ACK releasing held data. A looser
	// cap directly raises the smallest detectable sender pacing timer: a
	// timer tick T is attributed to ACK clocking whenever T minus one
	// ACK-passage time fits under the cap.
	MaxShiftRTTMillis int
}

func (c Config) withDefaults() Config {
	if c.FlightGapDiv == 0 {
		c.FlightGapDiv = 2
	}
	if c.MaxShiftRTTMillis == 0 {
		c.MaxShiftRTTMillis = 1500
	}
	return c
}

// Shift returns a copy of c's ACK events with flight-granular forward time
// shifts applied. The data events are untouched; series generation runs on
// (original data, shifted ACKs), which approximates the sender-side
// interleaving. Connections whose RTT estimate is missing are returned
// unshifted.
func Shift(c *flows.Connection, cfg Config) []flows.AckEvent {
	cfg = cfg.withDefaults()
	acks := append([]flows.AckEvent(nil), c.Acks...)
	rtt := c.Profile.RTT
	if rtt <= 0 || len(acks) == 0 || len(c.Data) == 0 {
		return acks
	}
	flightGap := rtt / Micros(cfg.FlightGapDiv)
	if flightGap <= 0 {
		flightGap = 1
	}
	maxShift := rtt * Micros(cfg.MaxShiftRTTMillis) / 1000

	// Group ACKs into flights by inter-arrival spacing.
	type flight struct{ lo, hi int } // index range [lo,hi]
	var flights []flight
	cur := flight{lo: 0, hi: 0}
	for i := 1; i < len(acks); i++ {
		if acks[i].Time-acks[i-1].Time > flightGap {
			flights = append(flights, cur)
			cur = flight{lo: i, hi: i}
			continue
		}
		cur.hi = i
	}
	flights = append(flights, cur)

	// For each ACK, estimate d2 as the delay to the first NEW data packet
	// whose sequence extends beyond what was permitted before this ACK —
	// i.e. data this ACK's window release explains — then shift the flight
	// by the minimum d2 among its ACKs. Only ACKs that actually release
	// something qualify: the cumulative ack must advance or the advertised
	// window edge must open. A segment that repeats the current ack with an
	// unchanged window frees no sender state — the receiver's own
	// keepalives are the common case, and associating one with whatever
	// data happens to follow would time-shift it across a genuine sender
	// pause (both ends arm their keepalive timers at session start, so the
	// reverse keepalive lands almost exactly one release delay before the
	// forward one).
	di := 0
	var maxAck, maxEdge int64
	ei := 0
	advanceEdge := func(t Micros) {
		for ei < len(c.Acks) && c.Acks[ei].Time <= t {
			a := c.Acks[ei]
			if a.Ack > maxAck {
				maxAck = a.Ack
			}
			if edge := a.Ack + int64(a.Window); edge > maxEdge {
				maxEdge = edge
			}
			ei++
		}
	}
	for _, fl := range flights {
		minD2 := Micros(-1)
		for i := fl.lo; i <= fl.hi; i++ {
			a := acks[i]
			if a.Dup {
				continue // dup ACKs trigger retransmissions, not releases
			}
			// Compare against the state just before this ACK (original,
			// unshifted times — acks[] is mutated flight by flight).
			advanceEdge(a.Time - 1)
			if a.Ack <= maxAck && a.Ack+int64(a.Window) <= maxEdge {
				continue // releases nothing (keepalive or stale ACK)
			}
			// Advance the data cursor to the first data packet after the ACK.
			for di < len(c.Data) && c.Data[di].Time <= a.Time {
				di++
			}
			for j := di; j < len(c.Data); j++ {
				d := c.Data[j]
				if d.Time-a.Time > maxShift {
					break
				}
				if d.Kind == flows.DataNew && d.SeqEnd > a.Ack {
					d2 := d.Time - a.Time
					if minD2 < 0 || d2 < minD2 {
						minD2 = d2
					}
					break
				}
			}
		}
		if minD2 <= 0 {
			continue // nothing released (sender idle or trailing flight)
		}
		// Keep the shifted ACK strictly before the data it released.
		shift := minD2 - 1
		for i := fl.lo; i <= fl.hi; i++ {
			acks[i].Time += shift
		}
	}
	return acks
}

package asciiplot

import (
	"strings"
	"testing"

	"tdat/internal/flows"
	"tdat/internal/timerange"
	"tdat/internal/traceutil"
)

func TestSeriesRendersLanes(t *testing.T) {
	var sb strings.Builder
	rows := []Row{
		{Label: "full", Set: timerange.NewSet(timerange.R(0, 100))},
		{Label: "half", Set: timerange.NewSet(timerange.R(0, 50))},
		{Label: "empty", Set: timerange.NewSet()},
	}
	if err := Series(&sb, timerange.R(0, 100), rows, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 lanes + axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "████████████████████") {
		t.Errorf("full lane not filled: %q", lines[0])
	}
	if !strings.Contains(lines[0], "100.0%") {
		t.Errorf("full lane missing ratio: %q", lines[0])
	}
	if !strings.Contains(lines[2], "····················") {
		t.Errorf("empty lane not blank: %q", lines[2])
	}
	if !strings.Contains(lines[2], "0.0%") {
		t.Errorf("empty lane ratio: %q", lines[2])
	}
	// Half lane: roughly 10 filled buckets.
	filled := strings.Count(lines[1], "█")
	if filled < 9 || filled > 11 {
		t.Errorf("half lane filled %d buckets: %q", filled, lines[1])
	}
}

func TestSeriesEmptySpan(t *testing.T) {
	var sb strings.Builder
	if err := Series(&sb, timerange.R(5, 5), nil, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty span") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestTimeSequenceMarks(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, 1460)
	b.Data(20_000, 0, 1460)
	b.Data(250_000, 0, 1460) // retransmission → 'R'
	b.Ack(260_000, 1460, 65535)
	c := b.Extract()

	var sb strings.Builder
	if err := TimeSequence(&sb, c, 60, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "R") {
		t.Errorf("retransmission mark missing:\n%s", out)
	}
	if !strings.Contains(out, ".") || !strings.Contains(out, "a") {
		t.Errorf("data/ack marks missing:\n%s", out)
	}
	if !strings.Contains(out, "marks:") {
		t.Error("legend missing")
	}
}

func TestTimeSequenceNoData(t *testing.T) {
	c := &flows.Connection{}
	var sb strings.Builder
	if err := TimeSequence(&sb, c, 40, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data packets") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestCDFOutput(t *testing.T) {
	var sb strings.Builder
	if err := CDF(&sb, "durations", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "s"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"durations (n=10)", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var sb strings.Builder
	if err := CDF(&sb, "x", nil, "s"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no samples") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestDefaultsAppliedForNonPositiveDims(t *testing.T) {
	b := traceutil.New()
	b.Handshake(0, 10_000, 1460)
	b.Data(20_000, 0, 1460)
	c := b.Extract()
	var sb strings.Builder
	if err := TimeSequence(&sb, c, 0, 0); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(sb.String(), "\n")) < 20 {
		t.Errorf("default dimensions not applied:\n%s", sb.String())
	}
	var sb2 strings.Builder
	if err := Series(&sb2, timerange.R(0, 10), []Row{{Label: "x", Set: timerange.NewSet()}}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "·") {
		t.Error("default width not applied")
	}
}

// Package asciiplot renders time-sequence diagrams and event-series square
// waves as text — the repo's stand-in for the paper's BGPlot/SCNMPlot
// visualizer (Table VI), good enough to eyeball a transfer's gaps,
// retransmissions, and derived series in a terminal (paper Fig 11).
package asciiplot

import (
	"fmt"
	"io"
	"strings"

	"tdat/internal/flows"
	"tdat/internal/timerange"
)

// Row is one labeled series lane.
type Row struct {
	Label string
	Set   *timerange.Set
}

// Series renders each row as a square-wave lane over span: '█' covered,
// '·' uncovered. width is the number of time buckets (default 100).
func Series(w io.Writer, span timerange.Range, rows []Row, width int) error {
	if width <= 0 {
		width = 100
	}
	if span.Empty() {
		_, err := fmt.Fprintln(w, "(empty span)")
		return err
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range rows {
		var b strings.Builder
		fmt.Fprintf(&b, "%-*s ", labelW, r.Label)
		for i := 0; i < width; i++ {
			bs := span.Start + span.Len()*timerange.Micros(i)/timerange.Micros(width)
			be := span.Start + span.Len()*timerange.Micros(i+1)/timerange.Micros(width)
			if be <= bs {
				be = bs + 1
			}
			if len(r.Set.Query(timerange.R(bs, be))) > 0 {
				b.WriteRune('█')
			} else {
				b.WriteRune('·')
			}
		}
		ratio := float64(r.Set.Intersect(timerange.NewSet(span)).Size()) / float64(span.Len())
		fmt.Fprintf(&b, " %5.1f%%", ratio*100)
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return axis(w, span, labelW, width)
}

// TimeSequence renders the classic tcptrace-style plot: sequence offset on
// the Y axis, time on the X axis. Marks: '.' new data, 'R' retransmission,
// 'o' out-of-sequence fill, '~' reordered, 'a' cumulative ACK.
func TimeSequence(w io.Writer, c *flows.Connection, width, height int) error {
	if width <= 0 {
		width = 100
	}
	if height <= 0 {
		height = 20
	}
	span := c.Span()
	var maxSeq int64
	for _, d := range c.Data {
		if d.SeqEnd > maxSeq {
			maxSeq = d.SeqEnd
		}
	}
	if maxSeq == 0 || span.Empty() {
		_, err := fmt.Fprintln(w, "(no data packets)")
		return err
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	put := func(t timerange.Micros, seq int64, mark rune, override bool) {
		x := int(int64(t-span.Start) * int64(width) / int64(span.Len()))
		y := height - 1 - int(seq*int64(height)/(maxSeq+1))
		if x < 0 || x >= width || y < 0 || y >= height {
			return
		}
		if override || grid[y][x] == ' ' || grid[y][x] == 'a' {
			grid[y][x] = mark
		}
	}
	for _, a := range c.Acks {
		if a.Ack > 0 {
			put(a.Time, a.Ack, 'a', false)
		}
	}
	for _, d := range c.Data {
		mark := '.'
		override := false
		switch d.Kind {
		case flows.DataRetransmit:
			mark, override = 'R', true
		case flows.DataGapFill:
			mark, override = 'o', true
		case flows.DataReordered:
			mark, override = '~', true
		}
		put(d.Time, d.Seq, mark, override)
	}
	for _, line := range grid {
		if _, err := fmt.Fprintln(w, string(line)); err != nil {
			return err
		}
	}
	if err := axis(w, span, -1, width); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "marks: '.' data  'R' retransmit  'o' gap fill  '~' reordered  'a' ack")
	return err
}

// axis prints a time axis in seconds under a plot of the given width.
func axis(w io.Writer, span timerange.Range, labelW, width int) error {
	pad := ""
	if labelW >= 0 {
		pad = strings.Repeat(" ", labelW+1)
	}
	startS := float64(span.Start) / 1e6
	endS := float64(span.End) / 1e6
	mid := (startS + endS) / 2
	line := fmt.Sprintf("%-*.2f%*.2f%*.2f", width/3, startS, width/3, mid, width/3, endS)
	_, err := fmt.Fprintf(w, "%s%s (s)\n", pad, line)
	return err
}

// CDF renders an ASCII CDF: one line per decile with a bar.
func CDF(w io.Writer, label string, xs []float64, unit string) error {
	if len(xs) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no samples)\n", label)
		return err
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
	if _, err := fmt.Fprintf(w, "%s (n=%d)\n", label, len(s)); err != nil {
		return err
	}
	for _, p := range []int{10, 25, 50, 75, 80, 90, 95, 99} {
		idx := (len(s) - 1) * p / 100
		bar := strings.Repeat("▇", p/4)
		if _, err := fmt.Fprintf(w, "  p%-2d %-25s %10.2f %s\n", p, bar, s[idx], unit); err != nil {
			return err
		}
	}
	return nil
}

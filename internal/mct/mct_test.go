package mct

import (
	"fmt"
	"net/netip"
	"testing"

	"tdat/internal/bgp"
	"tdat/internal/mrt"
)

// pfx makes distinct /24 prefixes.
func pfx(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24)
}

// transferStream builds n updates of 4 fresh prefixes each, spaced dt apart
// starting at t0.
func transferStream(t0 Micros, n int, dt Micros) []Update {
	var out []Update
	for i := 0; i < n; i++ {
		var ps []netip.Prefix
		for j := 0; j < 4; j++ {
			ps = append(ps, pfx(i*4+j))
		}
		out = append(out, Update{Time: t0 + Micros(i)*dt, Prefixes: ps})
	}
	return out
}

func TestFindEndEmptyStream(t *testing.T) {
	if _, ok := FindEnd(nil, Config{}); ok {
		t.Error("found a transfer in an empty stream")
	}
}

func TestFindEndCleanTransfer(t *testing.T) {
	ups := transferStream(1_000_000, 50, 100_000)
	res, ok := FindEnd(ups, Config{})
	if !ok {
		t.Fatal("no result")
	}
	wantEnd := ups[len(ups)-1].Time
	if res.End != wantEnd {
		t.Errorf("End = %d, want %d", res.End, wantEnd)
	}
	if res.Updates != 50 || res.UniquePrefixes != 200 {
		t.Errorf("result = %+v", res)
	}
}

func TestFindEndStopsAtQuietGap(t *testing.T) {
	ups := transferStream(0, 30, 100_000)
	// A lone churn update long after the transfer.
	ups = append(ups, Update{Time: ups[len(ups)-1].Time + 120_000_000, Prefixes: []netip.Prefix{pfx(9999)}})
	res, ok := FindEnd(ups, Config{})
	if !ok {
		t.Fatal("no result")
	}
	if res.Updates != 30 {
		t.Errorf("Updates = %d, want 30 (churn excluded)", res.Updates)
	}
}

func TestFindEndStopsWhenNoveltyDies(t *testing.T) {
	ups := transferStream(0, 30, 100_000)
	last := ups[len(ups)-1].Time
	// Dense re-announcements of already-seen prefixes (no novelty) follow
	// within the quiet gap.
	for i := 0; i < 200; i++ {
		ups = append(ups, Update{
			Time:     last + Micros(i+1)*100_000,
			Prefixes: []netip.Prefix{pfx(i % 20)},
		})
	}
	res, ok := FindEnd(ups, Config{})
	if !ok {
		t.Fatal("no result")
	}
	if res.End > last+15_000_000 {
		t.Errorf("End = %d, want ≈%d (novelty rule should cut churn)", res.End, last)
	}
	if res.UniquePrefixes != 120 {
		t.Errorf("unique prefixes = %d, want 120", res.UniquePrefixes)
	}
}

func TestFindEndUnsortedInput(t *testing.T) {
	ups := transferStream(0, 10, 100_000)
	ups[0], ups[5] = ups[5], ups[0]
	res, ok := FindEnd(ups, Config{})
	if !ok || res.Updates != 10 {
		t.Errorf("unsorted input mishandled: %+v ok=%v", res, ok)
	}
}

func TestFindEndSlowPacedTransfer(t *testing.T) {
	// 2-second inter-update gaps (timer-paced sender) must not trip the
	// 30-second quiet rule.
	ups := transferStream(0, 20, 2_000_000)
	res, ok := FindEnd(ups, Config{})
	if !ok || res.Updates != 20 {
		t.Errorf("paced transfer cut short: %+v", res)
	}
}

func TestFromMessages(t *testing.T) {
	attrs := &bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: []uint16{1}, NextHop: netip.MustParseAddr("10.0.0.1")}
	msgs := []bgp.Message{
		&bgp.Keepalive{},
		&bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{pfx(1), pfx(2)}},
		&bgp.Update{Withdrawn: []netip.Prefix{pfx(3)}},
		&bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{pfx(4)}},
	}
	times := []Micros{10, 20, 30, 40}
	ups := FromMessages(times, msgs)
	if len(ups) != 2 {
		t.Fatalf("updates = %d, want 2", len(ups))
	}
	if ups[0].Time != 20 || len(ups[0].Prefixes) != 2 {
		t.Errorf("first = %+v", ups[0])
	}
	if ups[1].Time != 40 {
		t.Errorf("second = %+v", ups[1])
	}
}

func TestFindEndDeterministic(t *testing.T) {
	ups := transferStream(0, 100, 50_000)
	var results []string
	for i := 0; i < 3; i++ {
		r, _ := FindEnd(ups, Config{})
		results = append(results, fmt.Sprintf("%+v", r))
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Errorf("nondeterministic results: %v", results)
	}
}

func TestFromMRT(t *testing.T) {
	attrs := &bgp.PathAttrs{Origin: bgp.OriginIGP, ASPath: []uint16{1}, NextHop: netip.MustParseAddr("10.0.0.1")}
	mkRaw := func(m bgp.Message) []byte {
		raw, err := m.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	records := []mrt.Record{
		{TimeMicros: 10, Raw: mkRaw(&bgp.Keepalive{})},
		{TimeMicros: 20, Raw: mkRaw(&bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{pfx(1)}})},
		{TimeMicros: 30, Raw: []byte{0xde, 0xad}}, // corrupt record skipped
		{TimeMicros: 40, Raw: mkRaw(&bgp.Update{Attrs: attrs, NLRI: []netip.Prefix{pfx(2), pfx(3)}})},
	}
	ups := FromMRT(records)
	if len(ups) != 2 {
		t.Fatalf("updates = %d, want 2", len(ups))
	}
	if ups[0].Time != 20 || len(ups[1].Prefixes) != 2 {
		t.Errorf("updates = %+v", ups)
	}
}

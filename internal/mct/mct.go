// Package mct estimates the end of a BGP routing-table transfer from a
// stream of archived updates — the Minimum Collection Time algorithm of
// Zhang et al. [36] as adapted by the paper (§II-A): the TCP connection
// start pins the transfer start, and MCT finds the instant by which the
// initial table has been (re)announced.
//
// The adaptation here follows the original's intuition: during a table
// transfer the sender streams monotonically growing sets of distinct
// prefixes back-to-back; the transfer ends at the last update after which
// (i) essentially no new prefixes appear for a guard window, or (ii) the
// update stream goes quiet for longer than the inter-update timescale seen
// so far.
package mct

import (
	"encoding/binary"
	"net/netip"
	"sort"

	"tdat/internal/bgp"
	"tdat/internal/mrt"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// Update is one timed BGP update for MCT purposes.
type Update struct {
	Time Micros
	// Prefixes are the NLRI announcements in the update.
	Prefixes []netip.Prefix
}

// Config tunes the estimator; zero values select defaults.
type Config struct {
	// QuietGap ends the transfer when no update arrives for this long
	// (default 30 s — table transfers stream continuously at much finer
	// granularity, while post-transfer updates are sparse).
	QuietGap Micros
	// NoveltyWindow is the trailing window over which the novelty rule is
	// evaluated (default 10 s).
	NoveltyWindow Micros
	// MinNovelty is the fraction of a trailing window's announcements that
	// must be previously unseen prefixes for the transfer to be considered
	// still in progress (default 0.05).
	MinNovelty float64
}

func (c Config) withDefaults() Config {
	if c.QuietGap == 0 {
		c.QuietGap = 30 * 1_000_000
	}
	if c.NoveltyWindow == 0 {
		c.NoveltyWindow = 10 * 1_000_000
	}
	if c.MinNovelty == 0 {
		c.MinNovelty = 0.05
	}
	return c
}

// Result describes the identified transfer.
type Result struct {
	// End is the estimated transfer end time (the completing update's
	// timestamp).
	End Micros
	// Updates is how many updates belong to the transfer.
	Updates int
	// UniquePrefixes is the distinct prefix count announced by then.
	UniquePrefixes int
}

// prefixSet tracks distinct prefixes. IPv4 prefixes — the overwhelming case
// for the paper's table transfers — pack losslessly into a uint64 key
// (length in the high word, big-endian address in the low), which hashes
// several times faster than the 24-byte netip.Prefix struct and halves the
// map's memory traffic; anything else falls into a lazily created spill map.
type prefixSet struct {
	v4    map[uint64]struct{}
	other map[netip.Prefix]struct{}
}

func newPrefixSet(sizeHint int) *prefixSet {
	return &prefixSet{v4: make(map[uint64]struct{}, sizeHint)}
}

// insert adds p, reporting whether it was previously unseen.
func (s *prefixSet) insert(p netip.Prefix) bool {
	if a := p.Addr(); a.Is4() {
		a4 := a.As4()
		key := uint64(uint32(p.Bits()))<<32 | uint64(binary.BigEndian.Uint32(a4[:]))
		if _, ok := s.v4[key]; ok {
			return false
		}
		s.v4[key] = struct{}{}
		return true
	}
	if _, ok := s.other[p]; ok {
		return false
	}
	if s.other == nil {
		s.other = map[netip.Prefix]struct{}{}
	}
	s.other[p] = struct{}{}
	return true
}

func (s *prefixSet) len() int { return len(s.v4) + len(s.other) }

// FindEnd locates the transfer end in updates (which must be time-sorted;
// they are sorted defensively). ok is false for an empty stream.
func FindEnd(updates []Update, cfg Config) (Result, bool) {
	cfg = cfg.withDefaults()
	if len(updates) == 0 {
		return Result{}, false
	}
	ups := updates
	for i := 1; i < len(ups); i++ {
		if ups[i].Time < ups[i-1].Time {
			ups = append([]Update(nil), updates...)
			sort.SliceStable(ups, func(i, j int) bool { return ups[i].Time < ups[j].Time })
			break
		}
	}

	// Presize the seen-set to the announcement count: a table transfer is
	// mostly distinct prefixes, so this avoids every rehash on the hot path
	// at the cost of a transient overestimate on repetitive streams.
	announced := 0
	for i := range ups {
		announced += len(ups[i].Prefixes)
	}
	seen := newPrefixSet(announced)
	type point struct {
		time    Micros
		total   int // announcements in this update
		novel   int // previously unseen prefixes in this update
		cumulen int // unique prefixes after this update
	}
	points := make([]point, len(ups))
	for i := range ups {
		u := &ups[i]
		novel := 0
		for _, p := range u.Prefixes {
			if seen.insert(p) {
				novel++
			}
		}
		points[i] = point{time: u.Time, total: len(u.Prefixes), novel: novel, cumulen: seen.len()}
	}

	// Scan forward: the transfer continues while updates keep arriving
	// densely and keep contributing new prefixes. The trailing novelty
	// window slides with two pointers — wStart is non-decreasing, so each
	// point enters and leaves the running total/novel sums exactly once.
	endIdx := 0
	lo := 0
	wTotal, wNovel := points[0].total, points[0].novel
	for i := 1; i < len(points); i++ {
		gap := points[i].time - points[i-1].time
		if gap > cfg.QuietGap {
			break
		}
		// Trailing-window novelty: fraction of announcements that are new.
		wTotal += points[i].total
		wNovel += points[i].novel
		wStart := points[i].time - cfg.NoveltyWindow
		for points[lo].time < wStart {
			wTotal -= points[lo].total
			wNovel -= points[lo].novel
			lo++
		}
		if wTotal > 0 && float64(wNovel)/float64(wTotal) < cfg.MinNovelty {
			// The stream has stopped revealing table content: end at the
			// last update that contributed something new.
			break
		}
		endIdx = i
	}
	// Extend endIdx to the last update that added novelty at or before it.
	for endIdx > 0 && points[endIdx].novel == 0 {
		endIdx--
	}
	return Result{
		End:            points[endIdx].time,
		Updates:        endIdx + 1,
		UniquePrefixes: points[endIdx].cumulen,
	}, true
}

// FromMRT converts a collector's MRT archive into MCT updates — the
// Quagga-collector pipeline of paper §II-A, where the transfer end comes
// from the BGP archive rather than payload reassembly.
func FromMRT(records []mrt.Record) []Update {
	var out []Update
	for _, r := range records {
		m, err := r.Message()
		if err != nil {
			continue
		}
		u, ok := m.(*bgp.Update)
		if !ok || len(u.NLRI) == 0 {
			continue
		}
		out = append(out, Update{Time: r.TimeMicros, Prefixes: u.NLRI})
	}
	return out
}

// FromMessages converts reassembled/archived BGP messages to MCT updates,
// skipping non-update messages.
func FromMessages(times []Micros, msgs []bgp.Message) []Update {
	var out []Update
	for i, m := range msgs {
		u, ok := m.(*bgp.Update)
		if !ok || len(u.NLRI) == 0 {
			continue
		}
		out = append(out, Update{Time: times[i], Prefixes: u.NLRI})
	}
	return out
}

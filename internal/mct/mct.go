// Package mct estimates the end of a BGP routing-table transfer from a
// stream of archived updates — the Minimum Collection Time algorithm of
// Zhang et al. [36] as adapted by the paper (§II-A): the TCP connection
// start pins the transfer start, and MCT finds the instant by which the
// initial table has been (re)announced.
//
// The adaptation here follows the original's intuition: during a table
// transfer the sender streams monotonically growing sets of distinct
// prefixes back-to-back; the transfer ends at the last update after which
// (i) essentially no new prefixes appear for a guard window, or (ii) the
// update stream goes quiet for longer than the inter-update timescale seen
// so far.
package mct

import (
	"net/netip"
	"sort"

	"tdat/internal/bgp"
	"tdat/internal/mrt"
	"tdat/internal/timerange"
)

// Micros aliases the trace time unit.
type Micros = timerange.Micros

// Update is one timed BGP update for MCT purposes.
type Update struct {
	Time Micros
	// Prefixes are the NLRI announcements in the update.
	Prefixes []netip.Prefix
}

// Config tunes the estimator; zero values select defaults.
type Config struct {
	// QuietGap ends the transfer when no update arrives for this long
	// (default 30 s — table transfers stream continuously at much finer
	// granularity, while post-transfer updates are sparse).
	QuietGap Micros
	// NoveltyWindow is the trailing window over which the novelty rule is
	// evaluated (default 10 s).
	NoveltyWindow Micros
	// MinNovelty is the fraction of a trailing window's announcements that
	// must be previously unseen prefixes for the transfer to be considered
	// still in progress (default 0.05).
	MinNovelty float64
}

func (c Config) withDefaults() Config {
	if c.QuietGap == 0 {
		c.QuietGap = 30 * 1_000_000
	}
	if c.NoveltyWindow == 0 {
		c.NoveltyWindow = 10 * 1_000_000
	}
	if c.MinNovelty == 0 {
		c.MinNovelty = 0.05
	}
	return c
}

// Result describes the identified transfer.
type Result struct {
	// End is the estimated transfer end time (the completing update's
	// timestamp).
	End Micros
	// Updates is how many updates belong to the transfer.
	Updates int
	// UniquePrefixes is the distinct prefix count announced by then.
	UniquePrefixes int
}

// FindEnd locates the transfer end in updates (which must be time-sorted;
// they are sorted defensively). ok is false for an empty stream.
func FindEnd(updates []Update, cfg Config) (Result, bool) {
	cfg = cfg.withDefaults()
	if len(updates) == 0 {
		return Result{}, false
	}
	ups := append([]Update(nil), updates...)
	sort.SliceStable(ups, func(i, j int) bool { return ups[i].Time < ups[j].Time })

	seen := map[netip.Prefix]struct{}{}
	type point struct {
		time    Micros
		total   int // announcements in this update
		novel   int // previously unseen prefixes in this update
		cumulen int // unique prefixes after this update
	}
	points := make([]point, len(ups))
	for i, u := range ups {
		novel := 0
		for _, p := range u.Prefixes {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				novel++
			}
		}
		points[i] = point{time: u.Time, total: len(u.Prefixes), novel: novel, cumulen: len(seen)}
	}

	// Scan forward: the transfer continues while updates keep arriving
	// densely and keep contributing new prefixes.
	endIdx := 0
	for i := 1; i < len(points); i++ {
		gap := points[i].time - points[i-1].time
		if gap > cfg.QuietGap {
			break
		}
		// Trailing-window novelty: fraction of announcements that are new.
		wStart := points[i].time - cfg.NoveltyWindow
		total, novel := 0, 0
		for j := i; j >= 0 && points[j].time >= wStart; j-- {
			total += points[j].total
			novel += points[j].novel
		}
		if total > 0 && float64(novel)/float64(total) < cfg.MinNovelty {
			// The stream has stopped revealing table content: end at the
			// last update that contributed something new.
			break
		}
		endIdx = i
	}
	// Extend endIdx to the last update that added novelty at or before it.
	for endIdx > 0 && points[endIdx].novel == 0 {
		endIdx--
	}
	return Result{
		End:            points[endIdx].time,
		Updates:        endIdx + 1,
		UniquePrefixes: points[endIdx].cumulen,
	}, true
}

// FromMRT converts a collector's MRT archive into MCT updates — the
// Quagga-collector pipeline of paper §II-A, where the transfer end comes
// from the BGP archive rather than payload reassembly.
func FromMRT(records []mrt.Record) []Update {
	var out []Update
	for _, r := range records {
		m, err := r.Message()
		if err != nil {
			continue
		}
		u, ok := m.(*bgp.Update)
		if !ok || len(u.NLRI) == 0 {
			continue
		}
		out = append(out, Update{Time: r.TimeMicros, Prefixes: u.NLRI})
	}
	return out
}

// FromMessages converts reassembled/archived BGP messages to MCT updates,
// skipping non-update messages.
func FromMessages(times []Micros, msgs []bgp.Message) []Update {
	var out []Update
	for i, m := range msgs {
		u, ok := m.(*bgp.Update)
		if !ok || len(u.NLRI) == 0 {
			continue
		}
		out = append(out, Update{Time: times[i], Prefixes: u.NLRI})
	}
	return out
}

package bgp

import (
	"math/rand"
	"net/netip"
	"testing"
)

// TestParseNeverPanics mutates valid messages and feeds noise: malformed
// BGP bytes in a reassembled stream must error, never crash.
func TestParseNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	attrs := &PathAttrs{
		Origin:    OriginIGP,
		ASPath:    []uint16{7018, 3356},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		HasMED:    true,
		MED:       5,
		HasLocal:  true,
		LocalPref: 100,
	}
	u := &Update{
		Withdrawn: []Prefix{mustPrefix("192.0.2.0/24")},
		Attrs:     attrs,
		NLRI:      []Prefix{mustPrefix("10.0.0.0/8"), mustPrefix("172.16.0.0/12")},
	}
	good, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		var data []byte
		switch i % 3 {
		case 0:
			data = make([]byte, rnd.Intn(100))
			rnd.Read(data)
		case 1:
			data = append([]byte(nil), good...)
			for j := 0; j < 1+rnd.Intn(6); j++ {
				data[rnd.Intn(len(data))] ^= byte(1 << rnd.Intn(8))
			}
		default:
			data = good[:rnd.Intn(len(good))]
		}
		_, _ = Parse(data)
		_, _, _ = SplitStream(data)
	}
}

// FuzzParse is the native fuzz target behind TestParseNeverPanics: any
// byte string must parse or error, never crash, and a message that parses
// and re-marshals must re-parse. CI runs this for a short smoke window on
// every push; run locally with
//
//	go test -run='^$' -fuzz=FuzzParse -fuzztime=30s ./internal/bgp
func FuzzParse(f *testing.F) {
	attrs := &PathAttrs{
		Origin:    OriginIGP,
		ASPath:    []uint16{7018, 3356},
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		HasMED:    true,
		MED:       5,
		HasLocal:  true,
		LocalPref: 100,
	}
	u := &Update{
		Withdrawn: []Prefix{mustPrefix("192.0.2.0/24")},
		Attrs:     attrs,
		NLRI:      []Prefix{mustPrefix("10.0.0.0/8"), mustPrefix("172.16.0.0/12")},
	}
	good, err := u.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:19])
	f.Add([]byte{})
	f.Add(append(append([]byte(nil), good...), good...)) // two messages back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err == nil && m != nil {
			if again, err := m.Marshal(); err == nil {
				if _, err := Parse(again); err != nil {
					t.Errorf("re-marshaled message failed to parse: %v", err)
				}
			}
		}
		_, _, _ = SplitStream(data)
	})
}

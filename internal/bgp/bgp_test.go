package bgp

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(s string) Prefix { return netip.MustParsePrefix(s) }

func sampleAttrs() *PathAttrs {
	return &PathAttrs{
		Origin:  OriginIGP,
		ASPath:  []uint16{19080, 22298, 30092},
		NextHop: netip.MustParseAddr("10.1.2.3"),
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{AS: 65001, HoldTime: 180, Identifier: netip.MustParseAddr("192.0.2.1")}
	data, err := o.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m.(*Open)
	if !ok {
		t.Fatalf("parsed %T", m)
	}
	if got.Version != 4 || got.AS != 65001 || got.HoldTime != 180 || got.Identifier != o.Identifier {
		t.Errorf("got %+v", got)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	data, err := (&Keepalive{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != HeaderLen {
		t.Errorf("keepalive length = %d, want %d", len(data), HeaderLen)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*Keepalive); !ok {
		t.Errorf("parsed %T", m)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: 4, Subcode: 0, Data: []byte{1, 2}}
	data, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Notification)
	if got.Code != 4 || got.Subcode != 0 || len(got.Data) != 2 {
		t.Errorf("got %+v", got)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []Prefix{mustPrefix("203.0.113.0/24")},
		Attrs: &PathAttrs{
			Origin:    OriginEGP,
			ASPath:    []uint16{1239, 13576, 14263, 23122},
			NextHop:   netip.MustParseAddr("198.51.100.7"),
			MED:       50,
			HasMED:    true,
			LocalPref: 200,
			HasLocal:  true,
		},
		NLRI: []Prefix{
			mustPrefix("66.154.112.0/24"),
			mustPrefix("66.154.104.0/22"),
			mustPrefix("138.247.0.0/16"),
			mustPrefix("0.0.0.0/0"),
		},
	}
	data, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Update)
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
	if len(got.NLRI) != len(u.NLRI) {
		t.Fatalf("NLRI = %v", got.NLRI)
	}
	for i := range got.NLRI {
		if got.NLRI[i] != u.NLRI[i] {
			t.Errorf("NLRI[%d] = %v, want %v", i, got.NLRI[i], u.NLRI[i])
		}
	}
	if got.Attrs.Origin != OriginEGP || got.Attrs.NextHop != u.Attrs.NextHop {
		t.Errorf("attrs = %+v", got.Attrs)
	}
	if len(got.Attrs.ASPath) != 4 || got.Attrs.ASPath[0] != 1239 {
		t.Errorf("as path = %v", got.Attrs.ASPath)
	}
	if !got.Attrs.HasMED || got.Attrs.MED != 50 || !got.Attrs.HasLocal || got.Attrs.LocalPref != 200 {
		t.Errorf("med/localpref = %+v", got.Attrs)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []Prefix{mustPrefix("10.0.0.0/8")}}
	data, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Update)
	if got.Attrs != nil || len(got.NLRI) != 0 || len(got.Withdrawn) != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestUpdateNLRIWithoutAttrsRejected(t *testing.T) {
	u := &Update{NLRI: []Prefix{mustPrefix("10.0.0.0/8")}}
	if _, err := u.Marshal(); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
}

func TestParseErrors(t *testing.T) {
	valid, err := (&Keepalive{}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		data    []byte
		wantErr error
	}{
		{"short", valid[:10], ErrTruncated},
		{"bad marker", func() []byte { d := append([]byte(nil), valid...); d[3] = 0; return d }(), ErrBadMarker},
		{"bad type", func() []byte { d := append([]byte(nil), valid...); d[18] = 9; return d }(), ErrBadType},
		{
			"length too small",
			func() []byte { d := append([]byte(nil), valid...); d[16], d[17] = 0, 5; return d }(),
			ErrBadLength,
		},
		{
			"keepalive with body",
			func() []byte {
				d := frame(TypeKeepalive, []byte{0})
				return d
			}(),
			ErrBadMessage,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.data); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSplitStream(t *testing.T) {
	k, _ := (&Keepalive{}).Marshal()
	u, _ := (&Update{Attrs: sampleAttrs(), NLRI: []Prefix{mustPrefix("10.0.0.0/8")}}).Marshal()
	stream := append(append([]byte{}, k...), u...)

	// Whole stream splits into two messages.
	msgs, consumed, err := SplitStream(stream)
	if err != nil || len(msgs) != 2 || consumed != len(stream) {
		t.Fatalf("msgs=%d consumed=%d err=%v", len(msgs), consumed, err)
	}

	// Partial trailing message stays unconsumed.
	partial := stream[:len(k)+5]
	msgs, consumed, err = SplitStream(partial)
	if err != nil || len(msgs) != 1 || consumed != len(k) {
		t.Fatalf("partial: msgs=%d consumed=%d err=%v", len(msgs), consumed, err)
	}

	// Garbage length aborts.
	bad := append([]byte(nil), stream...)
	bad[len(k)+16] = 0xFF
	bad[len(k)+17] = 0xFF
	_, _, err = SplitStream(bad)
	if !errors.Is(err, ErrBadLength) {
		t.Errorf("garbage err = %v, want ErrBadLength", err)
	}
}

func TestPackTableGroupsByAttrs(t *testing.T) {
	a1 := sampleAttrs()
	a2 := &PathAttrs{Origin: OriginIGP, ASPath: []uint16{7018}, NextHop: netip.MustParseAddr("10.9.9.9")}
	routes := []Route{
		{mustPrefix("10.0.0.0/24"), a1},
		{mustPrefix("10.0.1.0/24"), a2},
		{mustPrefix("10.0.2.0/24"), a1},
	}
	updates, err := PackTable(routes)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != 2 {
		t.Fatalf("updates = %d, want 2", len(updates))
	}
	if len(updates[0].NLRI) != 2 || len(updates[1].NLRI) != 1 {
		t.Errorf("NLRI counts = %d,%d", len(updates[0].NLRI), len(updates[1].NLRI))
	}
}

func TestPackTableRespectsMaxMessage(t *testing.T) {
	attrs := sampleAttrs()
	var routes []Route
	for i := 0; i < 3000; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0})
		routes = append(routes, Route{netip.PrefixFrom(addr, 24), attrs})
	}
	updates, err := PackTable(routes)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) < 2 {
		t.Fatalf("expected multiple packed updates, got %d", len(updates))
	}
	total := 0
	for _, u := range updates {
		data, err := u.Marshal()
		if err != nil {
			t.Fatalf("packed update does not marshal: %v", err)
		}
		if len(data) > MaxMessageLen {
			t.Errorf("update %d bytes exceeds max", len(data))
		}
		total += len(u.NLRI)
	}
	if total != len(routes) {
		t.Errorf("packed %d prefixes, want %d", total, len(routes))
	}
}

func TestPackTableRejectsNilAttrs(t *testing.T) {
	_, err := PackTable([]Route{{mustPrefix("10.0.0.0/8"), nil}})
	if !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	// Property: random updates survive Marshal/Parse with identical prefixes
	// and attributes.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		attrs := &PathAttrs{
			Origin:  uint8(rnd.Intn(3)),
			NextHop: netip.AddrFrom4([4]byte{byte(rnd.Intn(223) + 1), byte(rnd.Intn(256)), byte(rnd.Intn(256)), 1}),
		}
		for i, n := 0, rnd.Intn(8); i < n; i++ {
			attrs.ASPath = append(attrs.ASPath, uint16(rnd.Intn(64000)+1))
		}
		u := &Update{Attrs: attrs}
		for i, n := 0, rnd.Intn(40)+1; i < n; i++ {
			bits := rnd.Intn(25) + 8
			addr := netip.AddrFrom4([4]byte{byte(rnd.Intn(223) + 1), byte(rnd.Intn(256)), byte(rnd.Intn(256)), byte(rnd.Intn(256))})
			u.NLRI = append(u.NLRI, netip.PrefixFrom(addr, bits).Masked())
		}
		data, err := u.Marshal()
		if err != nil {
			return false
		}
		m, err := Parse(data)
		if err != nil {
			return false
		}
		got, ok := m.(*Update)
		if !ok || len(got.NLRI) != len(u.NLRI) {
			return false
		}
		for i := range got.NLRI {
			if got.NLRI[i] != u.NLRI[i] {
				return false
			}
		}
		if got.Attrs.Origin != attrs.Origin || got.Attrs.NextHop != attrs.NextHop {
			return false
		}
		if len(got.Attrs.ASPath) != len(attrs.ASPath) {
			return false
		}
		for i := range got.Attrs.ASPath {
			if got.Attrs.ASPath[i] != attrs.ASPath[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAttrsKeyDistinguishes(t *testing.T) {
	a := sampleAttrs()
	b := sampleAttrs()
	if a.Key() != b.Key() {
		t.Error("identical attrs produced different keys")
	}
	b.ASPath = append(b.ASPath, 999)
	if a.Key() == b.Key() {
		t.Error("different AS paths produced identical keys")
	}
	c := sampleAttrs()
	c.HasMED, c.MED = true, 10
	if a.Key() == c.Key() {
		t.Error("MED presence not reflected in key")
	}
}

func TestExtendedLengthASPath(t *testing.T) {
	// >126 ASes force the extended-length attribute encoding.
	attrs := &PathAttrs{Origin: OriginIGP, NextHop: netip.MustParseAddr("10.0.0.1")}
	for i := 0; i < 200; i++ {
		attrs.ASPath = append(attrs.ASPath, uint16(i+1))
	}
	u := &Update{Attrs: attrs, NLRI: []Prefix{mustPrefix("10.1.0.0/16")}}
	data, err := u.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*Update)
	if len(got.Attrs.ASPath) != 200 {
		t.Fatalf("AS path length = %d", len(got.Attrs.ASPath))
	}
	for i, as := range got.Attrs.ASPath {
		if as != uint16(i+1) {
			t.Fatalf("AS path[%d] = %d", i, as)
		}
	}
}

func TestASPathTooLongRejected(t *testing.T) {
	attrs := sampleAttrs()
	attrs.ASPath = make([]uint16, 300)
	u := &Update{Attrs: attrs, NLRI: []Prefix{mustPrefix("10.0.0.0/8")}}
	if _, err := u.Marshal(); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
}

func TestPackTablePreservesPrefixOrderProperty(t *testing.T) {
	// Property: PackTable keeps each attribute group's prefixes in input
	// order and loses none, regardless of table shape.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		nGroups := 1 + rnd.Intn(6)
		attrs := make([]*PathAttrs, nGroups)
		for i := range attrs {
			attrs[i] = &PathAttrs{
				Origin:  uint8(i % 3),
				ASPath:  []uint16{uint16(100 + i)},
				NextHop: netip.MustParseAddr("10.9.9.9"),
			}
		}
		n := 1 + rnd.Intn(400)
		routes := make([]Route, n)
		perGroup := map[int][]Prefix{}
		for i := range routes {
			g := rnd.Intn(nGroups)
			addr := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0})
			p := netip.PrefixFrom(addr, 24)
			routes[i] = Route{Prefix: p, Attrs: attrs[g]}
			perGroup[g] = append(perGroup[g], p)
		}
		updates, err := PackTable(routes)
		if err != nil {
			return false
		}
		gotPerKey := map[string][]Prefix{}
		for _, u := range updates {
			k := u.Attrs.Key()
			gotPerKey[k] = append(gotPerKey[k], u.NLRI...)
		}
		for g, want := range perGroup {
			got := gotPerKey[attrs[g].Key()]
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplitStreamRoundTripProperty(t *testing.T) {
	// Property: any concatenation of marshaled messages splits back into
	// the same count at every prefix of the stream.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		var stream []byte
		count := 0
		for i, n := 0, 1+rnd.Intn(20); i < n; i++ {
			var m Message
			switch rnd.Intn(3) {
			case 0:
				m = &Keepalive{}
			case 1:
				m = &Notification{Code: uint8(rnd.Intn(6) + 1)}
			default:
				m = &Update{Attrs: sampleAttrs(), NLRI: []Prefix{mustPrefix("10.0.0.0/8")}}
			}
			raw, err := m.Marshal()
			if err != nil {
				return false
			}
			stream = append(stream, raw...)
			count++
		}
		msgs, consumed, err := SplitStream(stream)
		if err != nil || consumed != len(stream) || len(msgs) != count {
			return false
		}
		// A truncated prefix never errors and never over-consumes.
		cut := rnd.Intn(len(stream))
		pmsgs, pconsumed, err := SplitStream(stream[:cut])
		return err == nil && pconsumed <= cut && len(pmsgs) <= count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPackWithdrawals(t *testing.T) {
	var prefixes []Prefix
	for i := 0; i < 2500; i++ {
		addr := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0})
		prefixes = append(prefixes, netip.PrefixFrom(addr, 24))
	}
	updates, err := PackWithdrawals(prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) < 2 {
		t.Fatalf("packed into %d updates", len(updates))
	}
	total := 0
	for _, u := range updates {
		raw, err := u.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > MaxMessageLen {
			t.Errorf("update %d bytes", len(raw))
		}
		m, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		total += len(m.(*Update).Withdrawn)
	}
	if total != len(prefixes) {
		t.Errorf("withdrew %d of %d", total, len(prefixes))
	}
	if _, err := PackWithdrawals([]Prefix{netip.MustParsePrefix("2001:db8::/32")}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("IPv6 err = %v", err)
	}
}

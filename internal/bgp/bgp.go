// Package bgp implements the subset of the BGP-4 wire protocol (RFC 4271)
// needed to synthesize and parse routing-table transfers: the common header,
// OPEN, UPDATE (withdrawn routes, path attributes, NLRI), KEEPALIVE, and
// NOTIFICATION messages, plus an UPDATE packer that groups prefixes sharing
// a path-attribute set into maximally filled messages the way routers do
// when they stream a full table.
package bgp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Message type codes (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Wire-size constants (RFC 4271).
const (
	HeaderLen     = 19   // marker(16) + length(2) + type(1)
	MaxMessageLen = 4096 // maximum BGP message size
	markerLen     = 16
)

// Errors returned by the codec.
var (
	ErrTruncated  = errors.New("bgp: truncated message")
	ErrBadMarker  = errors.New("bgp: bad marker")
	ErrBadLength  = errors.New("bgp: bad length")
	ErrBadType    = errors.New("bgp: unknown message type")
	ErrBadMessage = errors.New("bgp: malformed message body")
)

// Path attribute type codes.
const (
	AttrOrigin    = 1
	AttrASPath    = 2
	AttrNextHop   = 3
	AttrMED       = 4
	AttrLocalPref = 5
)

// Origin values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// Prefix is an IPv4 NLRI entry.
type Prefix = netip.Prefix

// PathAttrs is the decoded attribute set attached to a group of prefixes.
// Only the attributes the paper's tables exercise are modeled.
type PathAttrs struct {
	Origin    uint8
	ASPath    []uint16 // single AS_SEQUENCE segment
	NextHop   netip.Addr
	MED       uint32
	HasMED    bool
	LocalPref uint32
	HasLocal  bool
}

// Key returns a canonical string identifying the attribute set, used to
// group prefixes that can share one UPDATE.
func (a *PathAttrs) Key() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "o%d|nh%s|", a.Origin, a.NextHop)
	for _, as := range a.ASPath {
		fmt.Fprintf(&b, "%d ", as)
	}
	if a.HasMED {
		fmt.Fprintf(&b, "|m%d", a.MED)
	}
	if a.HasLocal {
		fmt.Fprintf(&b, "|l%d", a.LocalPref)
	}
	return b.String()
}

// marshalAttrs encodes the path attributes.
func (a *PathAttrs) marshalAttrs() ([]byte, error) {
	var b bytes.Buffer
	// ORIGIN: well-known transitive (flags 0x40).
	b.Write([]byte{0x40, AttrOrigin, 1, a.Origin})
	// AS_PATH.
	if len(a.ASPath) > 255 {
		return nil, fmt.Errorf("%w: AS path too long (%d)", ErrBadMessage, len(a.ASPath))
	}
	pathLen := 0
	if len(a.ASPath) > 0 {
		pathLen = 2 + 2*len(a.ASPath)
	}
	if pathLen > 255 {
		b.Write([]byte{0x50, AttrASPath}) // extended length
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(pathLen))
		b.Write(l[:])
	} else {
		b.Write([]byte{0x40, AttrASPath, uint8(pathLen)})
	}
	if len(a.ASPath) > 0 {
		b.WriteByte(SegmentSequence)
		b.WriteByte(uint8(len(a.ASPath)))
		for _, as := range a.ASPath {
			var v [2]byte
			binary.BigEndian.PutUint16(v[:], as)
			b.Write(v[:])
		}
	}
	// NEXT_HOP.
	if !a.NextHop.Is4() {
		return nil, fmt.Errorf("%w: next hop %v is not IPv4", ErrBadMessage, a.NextHop)
	}
	nh := a.NextHop.As4()
	b.Write([]byte{0x40, AttrNextHop, 4})
	b.Write(nh[:])
	// MED (optional non-transitive, flags 0x80).
	if a.HasMED {
		b.Write([]byte{0x80, AttrMED, 4})
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.MED)
		b.Write(v[:])
	}
	// LOCAL_PREF (well-known, flags 0x40).
	if a.HasLocal {
		b.Write([]byte{0x40, AttrLocalPref, 4})
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.LocalPref)
		b.Write(v[:])
	}
	return b.Bytes(), nil
}

// Message is any BGP message.
type Message interface {
	// Type returns the RFC 4271 message type code.
	Type() uint8
	// Marshal serializes the message including the common header.
	Marshal() ([]byte, error)
}

// Open is a BGP OPEN message.
type Open struct {
	Version    uint8
	AS         uint16
	HoldTime   uint16
	Identifier netip.Addr
}

// Type implements Message.
func (*Open) Type() uint8 { return TypeOpen }

// Marshal implements Message.
func (o *Open) Marshal() ([]byte, error) {
	if !o.Identifier.Is4() {
		return nil, fmt.Errorf("%w: OPEN identifier %v is not IPv4", ErrBadMessage, o.Identifier)
	}
	body := make([]byte, 10)
	v := o.Version
	if v == 0 {
		v = 4
	}
	body[0] = v
	binary.BigEndian.PutUint16(body[1:3], o.AS)
	binary.BigEndian.PutUint16(body[3:5], o.HoldTime)
	id := o.Identifier.As4()
	copy(body[5:9], id[:])
	body[9] = 0 // no optional parameters
	return frame(TypeOpen, body), nil
}

// Keepalive is a BGP KEEPALIVE message (header only).
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() uint8 { return TypeKeepalive }

// Marshal implements Message.
func (*Keepalive) Marshal() ([]byte, error) { return frame(TypeKeepalive, nil), nil }

// Notification is a BGP NOTIFICATION message.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() uint8 { return TypeNotification }

// Marshal implements Message.
func (n *Notification) Marshal() ([]byte, error) {
	body := append([]byte{n.Code, n.Subcode}, n.Data...)
	if HeaderLen+len(body) > MaxMessageLen {
		return nil, fmt.Errorf("%w: notification too large", ErrBadLength)
	}
	return frame(TypeNotification, body), nil
}

// Update is a BGP UPDATE message.
type Update struct {
	Withdrawn []Prefix
	Attrs     *PathAttrs // nil when the update only withdraws
	NLRI      []Prefix
}

// Type implements Message.
func (*Update) Type() uint8 { return TypeUpdate }

// Marshal implements Message.
func (u *Update) Marshal() ([]byte, error) {
	var body bytes.Buffer
	wd, err := marshalPrefixes(u.Withdrawn)
	if err != nil {
		return nil, err
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(wd)))
	body.Write(l[:])
	body.Write(wd)

	var attrs []byte
	if u.Attrs != nil {
		attrs, err = u.Attrs.marshalAttrs()
		if err != nil {
			return nil, err
		}
	} else if len(u.NLRI) > 0 {
		return nil, fmt.Errorf("%w: NLRI without path attributes", ErrBadMessage)
	}
	binary.BigEndian.PutUint16(l[:], uint16(len(attrs)))
	body.Write(l[:])
	body.Write(attrs)

	nlri, err := marshalPrefixes(u.NLRI)
	if err != nil {
		return nil, err
	}
	body.Write(nlri)
	if HeaderLen+body.Len() > MaxMessageLen {
		return nil, fmt.Errorf("%w: update %d bytes exceeds %d", ErrBadLength, HeaderLen+body.Len(), MaxMessageLen)
	}
	return frame(TypeUpdate, body.Bytes()), nil
}

// frame prepends the 19-byte common header.
func frame(msgType uint8, body []byte) []byte {
	out := make([]byte, HeaderLen+len(body))
	for i := 0; i < markerLen; i++ {
		out[i] = 0xFF
	}
	binary.BigEndian.PutUint16(out[16:18], uint16(len(out)))
	out[18] = msgType
	copy(out[HeaderLen:], body)
	return out
}

// marshalPrefixes encodes a prefix list in NLRI format.
func marshalPrefixes(prefixes []Prefix) ([]byte, error) {
	var b bytes.Buffer
	for _, p := range prefixes {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("%w: prefix %v is not IPv4", ErrBadMessage, p)
		}
		bits := p.Bits()
		b.WriteByte(uint8(bits))
		addr := p.Addr().As4()
		b.Write(addr[:(bits+7)/8])
	}
	return b.Bytes(), nil
}

// parsePrefixes decodes an NLRI-format prefix list. A first pass over the
// length bytes counts the entries so the result is allocated once at exact
// size — prefix lists dominate table-transfer parsing, and append-growing
// a slice of 4096-byte messages' worth of prefixes resized several times
// per message.
func parsePrefixes(data []byte) ([]Prefix, error) {
	count := 0
	for rest := data; len(rest) > 0; count++ {
		bits := int(rest[0])
		if bits > 32 {
			return nil, fmt.Errorf("%w: prefix length %d", ErrBadMessage, bits)
		}
		nbytes := (bits + 7) / 8
		if len(rest) < 1+nbytes {
			return nil, fmt.Errorf("%w: prefix bytes", ErrTruncated)
		}
		rest = rest[1+nbytes:]
	}
	if count == 0 {
		return nil, nil
	}
	out := make([]Prefix, 0, count)
	for len(data) > 0 {
		bits := int(data[0])
		nbytes := (bits + 7) / 8
		var addr [4]byte
		copy(addr[:], data[1:1+nbytes])
		p := netip.PrefixFrom(netip.AddrFrom4(addr), bits)
		out = append(out, p.Masked())
		data = data[1+nbytes:]
	}
	return out, nil
}

// PrefixWireLen returns the NLRI encoding size of one prefix.
func PrefixWireLen(p Prefix) int { return 1 + (p.Bits()+7)/8 }

// Parse decodes one message from data, which must contain exactly one whole
// message (as produced by SplitStream or read from MRT).
func Parse(data []byte) (Message, error) {
	if len(data) < HeaderLen {
		return nil, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(data))
	}
	for i := 0; i < markerLen; i++ {
		if data[i] != 0xFF {
			return nil, ErrBadMarker
		}
	}
	length := int(binary.BigEndian.Uint16(data[16:18]))
	if length < HeaderLen || length > MaxMessageLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	if length != len(data) {
		return nil, fmt.Errorf("%w: declared %d, have %d", ErrBadLength, length, len(data))
	}
	body := data[HeaderLen:]
	switch data[18] {
	case TypeOpen:
		return parseOpen(body)
	case TypeUpdate:
		return parseUpdate(body)
	case TypeNotification:
		if len(body) < 2 {
			return nil, fmt.Errorf("%w: notification body", ErrTruncated)
		}
		return &Notification{Code: body[0], Subcode: body[1], Data: append([]byte(nil), body[2:]...)}, nil
	case TypeKeepalive:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: keepalive with body", ErrBadMessage)
		}
		return &Keepalive{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, data[18])
	}
}

func parseOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, fmt.Errorf("%w: OPEN body %d bytes", ErrTruncated, len(body))
	}
	return &Open{
		Version:    body[0],
		AS:         binary.BigEndian.Uint16(body[1:3]),
		HoldTime:   binary.BigEndian.Uint16(body[3:5]),
		Identifier: netip.AddrFrom4([4]byte(body[5:9])),
	}, nil
}

func parseUpdate(body []byte) (*Update, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: UPDATE body %d bytes", ErrTruncated, len(body))
	}
	wdLen := int(binary.BigEndian.Uint16(body[0:2]))
	if 2+wdLen+2 > len(body) {
		return nil, fmt.Errorf("%w: withdrawn length %d", ErrBadLength, wdLen)
	}
	// Allocate the Update and its PathAttrs as one block: a table transfer
	// parses millions of updates, the pair always lives and dies together,
	// and the second heap object was ~20% of the pipeline's allocations.
	box := &struct {
		u Update
		a PathAttrs
	}{}
	u := &box.u
	var err error
	u.Withdrawn, err = parsePrefixes(body[2 : 2+wdLen])
	if err != nil {
		return nil, err
	}
	rest := body[2+wdLen:]
	attrLen := int(binary.BigEndian.Uint16(rest[0:2]))
	if 2+attrLen > len(rest) {
		return nil, fmt.Errorf("%w: attribute length %d", ErrBadLength, attrLen)
	}
	if attrLen > 0 {
		if err := parseAttrs(rest[2:2+attrLen], &box.a); err != nil {
			return nil, err
		}
		u.Attrs = &box.a
	}
	u.NLRI, err = parsePrefixes(rest[2+attrLen:])
	if err != nil {
		return nil, err
	}
	if len(u.NLRI) > 0 && u.Attrs == nil {
		return nil, fmt.Errorf("%w: NLRI without path attributes", ErrBadMessage)
	}
	return u, nil
}

func parseAttrs(data []byte, a *PathAttrs) error {
	for len(data) > 0 {
		if len(data) < 3 {
			return fmt.Errorf("%w: attribute header", ErrTruncated)
		}
		flags, typ := data[0], data[1]
		var alen, hdr int
		if flags&0x10 != 0 { // extended length
			if len(data) < 4 {
				return fmt.Errorf("%w: extended attribute header", ErrTruncated)
			}
			alen, hdr = int(binary.BigEndian.Uint16(data[2:4])), 4
		} else {
			alen, hdr = int(data[2]), 3
		}
		if len(data) < hdr+alen {
			return fmt.Errorf("%w: attribute value (%d declared)", ErrTruncated, alen)
		}
		val := data[hdr : hdr+alen]
		switch typ {
		case AttrOrigin:
			if alen != 1 {
				return fmt.Errorf("%w: ORIGIN length %d", ErrBadLength, alen)
			}
			a.Origin = val[0]
		case AttrASPath:
			// Validate and count in one pass, then fill at exact size:
			// append-growing a 3–6 hop path from nil costs several small
			// allocations per update.
			count := 0
			for v := val; len(v) > 0; {
				if len(v) < 2 {
					return fmt.Errorf("%w: AS_PATH segment header", ErrTruncated)
				}
				segType, n := v[0], int(v[1])
				if len(v) < 2+2*n {
					return fmt.Errorf("%w: AS_PATH segment", ErrTruncated)
				}
				if segType != SegmentSequence && segType != SegmentSet {
					return fmt.Errorf("%w: AS_PATH segment type %d", ErrBadMessage, segType)
				}
				count += n
				v = v[2+2*n:]
			}
			if a.ASPath == nil && count > 0 {
				a.ASPath = make([]uint16, 0, count)
			}
			for len(val) > 0 {
				n := int(val[1])
				for i := 0; i < n; i++ {
					a.ASPath = append(a.ASPath, binary.BigEndian.Uint16(val[2+2*i:4+2*i]))
				}
				val = val[2+2*n:]
			}
		case AttrNextHop:
			if alen != 4 {
				return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadLength, alen)
			}
			a.NextHop = netip.AddrFrom4([4]byte(val))
		case AttrMED:
			if alen != 4 {
				return fmt.Errorf("%w: MED length %d", ErrBadLength, alen)
			}
			a.MED, a.HasMED = binary.BigEndian.Uint32(val), true
		case AttrLocalPref:
			if alen != 4 {
				return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadLength, alen)
			}
			a.LocalPref, a.HasLocal = binary.BigEndian.Uint32(val), true
		default:
			// Unknown attributes are skipped (optional transitive pass-through).
		}
		data = data[hdr+alen:]
	}
	return nil
}

// SplitStream splits a byte stream into whole BGP messages. It returns the
// parsed leading messages and the number of bytes consumed; a trailing
// partial message is left unconsumed for the caller to retry with more data.
// A framing error (bad marker/length) aborts the split.
func SplitStream(data []byte) (msgs []Message, consumed int, err error) {
	// Pre-walk the length fields to size the message slice exactly; the
	// walk stops where parsing would (short header, bad length, partial
	// trailing message), so the count is never an underestimate.
	count := 0
	for off := 0; len(data)-off >= HeaderLen; count++ {
		length := int(binary.BigEndian.Uint16(data[off+16 : off+18]))
		if length < HeaderLen || length > MaxMessageLen || len(data)-off < length {
			break
		}
		off += length
	}
	if count > 0 {
		msgs = make([]Message, 0, count)
	}
	for {
		if len(data)-consumed < HeaderLen {
			return msgs, consumed, nil
		}
		hdr := data[consumed:]
		length := int(binary.BigEndian.Uint16(hdr[16:18]))
		if length < HeaderLen || length > MaxMessageLen {
			return msgs, consumed, fmt.Errorf("%w: %d", ErrBadLength, length)
		}
		if len(data)-consumed < length {
			return msgs, consumed, nil
		}
		m, err := Parse(data[consumed : consumed+length])
		if err != nil {
			return msgs, consumed, err
		}
		msgs = append(msgs, m)
		consumed += length
	}
}

// Route is one routing-table entry: a prefix and its attribute set.
type Route struct {
	Prefix Prefix
	Attrs  *PathAttrs
}

// PackWithdrawals converts a prefix list into withdrawal-only UPDATE
// messages, each filled to the protocol's size limit — what a router emits
// when a failure invalidates routes before any re-announcement.
func PackWithdrawals(prefixes []Prefix) ([]*Update, error) {
	const base = HeaderLen + 2 + 2 // header + withdrawn len + attr len
	budget := MaxMessageLen - base
	var out []*Update
	var cur []Prefix
	curBytes := 0
	flush := func() {
		if len(cur) > 0 {
			out = append(out, &Update{Withdrawn: cur})
			cur, curBytes = nil, 0
		}
	}
	for _, p := range prefixes {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("%w: prefix %v is not IPv4", ErrBadMessage, p)
		}
		w := PrefixWireLen(p)
		if curBytes+w > budget {
			flush()
		}
		cur = append(cur, p)
		curBytes += w
	}
	flush()
	return out, nil
}

// PackTable converts a routing table into a sequence of UPDATE messages,
// grouping prefixes by identical attribute sets and filling each message up
// to the 4096-byte limit — the way a router serializes a full-table
// transfer. Group order follows first appearance in the input, and prefix
// order within a group is preserved, so output is deterministic.
func PackTable(routes []Route) ([]*Update, error) {
	type group struct {
		attrs    *PathAttrs
		prefixes []Prefix
	}
	index := map[string]int{}
	var groups []*group
	for _, r := range routes {
		if r.Attrs == nil {
			return nil, fmt.Errorf("%w: route %v without attributes", ErrBadMessage, r.Prefix)
		}
		k := r.Attrs.Key()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, &group{attrs: r.Attrs})
		}
		groups[gi].prefixes = append(groups[gi].prefixes, r.Prefix)
	}

	var out []*Update
	for _, g := range groups {
		attrBytes, err := g.attrs.marshalAttrs()
		if err != nil {
			return nil, err
		}
		// Fixed per-message overhead: header + withdrawn len + attr len + attrs.
		base := HeaderLen + 2 + 2 + len(attrBytes)
		budget := MaxMessageLen - base
		var cur []Prefix
		curBytes := 0
		flush := func() {
			if len(cur) > 0 {
				out = append(out, &Update{Attrs: g.attrs, NLRI: cur})
				cur, curBytes = nil, 0
			}
		}
		for _, p := range g.prefixes {
			w := PrefixWireLen(p)
			if curBytes+w > budget {
				flush()
			}
			cur = append(cur, p)
			curBytes += w
		}
		flush()
	}
	return out, nil
}

package packet

import (
	"bytes"
	"fmt"
	"testing"
)

// samePacket compares a reference-decoded packet against a zero-copy-decoded
// one field by field. Byte-slice fields compare by content (the reference
// decoder copies, the zero-copy decoder aliases the frame — nil and empty
// are the same payload), everything else must match exactly.
func samePacket(ref, zc *Packet) error {
	if ref.Ether != zc.Ether {
		return fmt.Errorf("ethernet: %+v vs %+v", ref.Ether, zc.Ether)
	}
	if ref.IP != zc.IP {
		return fmt.Errorf("ipv4: %+v vs %+v", ref.IP, zc.IP)
	}
	r, z := ref.TCP, zc.TCP
	if r.SrcPort != z.SrcPort || r.DstPort != z.DstPort || r.Seq != z.Seq ||
		r.Ack != z.Ack || r.Flags != z.Flags || r.Window != z.Window || r.Urgent != z.Urgent {
		return fmt.Errorf("tcp fixed fields: %+v vs %+v", r, z)
	}
	if len(r.Options) != len(z.Options) {
		return fmt.Errorf("option count: %d vs %d", len(r.Options), len(z.Options))
	}
	for i := range r.Options {
		if r.Options[i].Kind != z.Options[i].Kind || !bytes.Equal(r.Options[i].Data, z.Options[i].Data) {
			return fmt.Errorf("option %d: %+v vs %+v", i, r.Options[i], z.Options[i])
		}
	}
	if !bytes.Equal(ref.Payload, zc.Payload) {
		return fmt.Errorf("payload: %d vs %d bytes", len(ref.Payload), len(zc.Payload))
	}
	return nil
}

// checkEquiv asserts the reference and zero-copy decoders agree on frame:
// both accept or both reject, and on acceptance produce identical packets.
func checkEquiv(t *testing.T, frame []byte) {
	t.Helper()
	ref, refErr := Decode(frame)
	var zc Packet
	zcErr := DecodeInto(frame, &zc)
	if (refErr == nil) != (zcErr == nil) {
		t.Fatalf("decoders disagree on acceptance: Decode err=%v, DecodeInto err=%v", refErr, zcErr)
	}
	if refErr != nil {
		if refErr.Error() != zcErr.Error() {
			t.Fatalf("decoders disagree on error: Decode %q, DecodeInto %q", refErr, zcErr)
		}
		return
	}
	if err := samePacket(ref, &zc); err != nil {
		t.Fatalf("decoders disagree on %x: %v", frame, err)
	}
}

// TestDecodeIntoEquivalence runs the differential check over handcrafted
// frames: the happy path, option-bearing SYNs, and the error taxonomy.
func TestDecodeIntoEquivalence(t *testing.T) {
	base := samplePacket()
	syn := samplePacket()
	syn.TCP.Flags = FlagSYN
	syn.TCP.SetMSS(1460)
	syn.TCP.Options = append(syn.TCP.Options,
		TCPOption{Kind: OptNOP},
		TCPOption{Kind: OptWindowScale, Data: []byte{7}},
		TCPOption{Kind: OptSACKPermitted, Data: nil},
	)
	syn.Payload = nil
	empty := samplePacket()
	empty.Payload = nil

	var frames [][]byte
	for _, p := range []*Packet{base, syn, empty} {
		frame, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame)
	}
	good := frames[0]
	// Error taxonomy: truncations at every layer boundary plus corrupt
	// fields, each hitting a distinct validation branch.
	for cut := 0; cut <= len(good); cut++ {
		frames = append(frames, good[:cut])
	}
	mutate := func(off int, val byte) []byte {
		f := append([]byte(nil), good...)
		f[off] = val
		return f
	}
	frames = append(frames,
		mutate(12, 0x86),                  // wrong ether type
		mutate(14, 0x65),                  // IP version 6
		mutate(14, 0x44),                  // IHL 4 < 20 bytes
		mutate(14, 0x4F),                  // IHL 60 > captured
		mutate(23, 17),                    // UDP, not TCP
		mutate(EthernetHeaderLen+2, 0xFF), // IP total length beyond capture
		mutate(EthernetHeaderLen+IPv4HeaderLen+12, 0x10), // TCP data offset 4
		mutate(EthernetHeaderLen+IPv4HeaderLen+12, 0xF0), // TCP data offset 60 > segment
	)
	// Option parsing branches: NOP run, dangling kind, bad length.
	withOpts := func(opts ...byte) []byte {
		p := samplePacket()
		p.Payload = nil
		frame, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// Splice raw option bytes in by rebuilding the TCP header with a
		// larger data offset (options area padded with the given bytes).
		tcpOff := EthernetHeaderLen + IPv4HeaderLen
		hdr := append([]byte(nil), frame[:tcpOff+20]...)
		hdr = append(hdr, opts...)
		for len(hdr[tcpOff+20:])%4 != 0 {
			hdr = append(hdr, 0)
		}
		hdr[tcpOff+12] = uint8((20+len(hdr[tcpOff+20:]))/4) << 4
		// Fix the IP total length; checksums are not re-verified by Decode.
		total := len(hdr) - EthernetHeaderLen
		hdr[EthernetHeaderLen+2] = byte(total >> 8)
		hdr[EthernetHeaderLen+3] = byte(total)
		return hdr
	}
	frames = append(frames,
		withOpts(OptNOP, OptNOP, OptNOP, OptEnd),
		withOpts(OptMSS, 4, 0x05, 0xB4),
		withOpts(OptMSS),          // dangling kind at end of options
		withOpts(OptMSS, 1, 0, 0), // option length < 2
		withOpts(OptMSS, 40, 0),   // option length beyond options area
	)
	for i, frame := range frames {
		i, frame := i, frame
		t.Run(fmt.Sprintf("frame-%d", i), func(t *testing.T) { checkEquiv(t, frame) })
	}
}

// TestDecodeIntoReuse proves the caller-provided struct is fully overwritten
// between decodes: stale options or payload from a previous (larger) packet
// must never leak into the next result.
func TestDecodeIntoReuse(t *testing.T) {
	syn := samplePacket()
	syn.TCP.Flags = FlagSYN
	syn.TCP.SetMSS(1460)
	syn.Payload = bytes.Repeat([]byte{0xAB}, 512)
	big, err := syn.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	small, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := DecodeInto(big, &p); err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(small, &p); err != nil {
		t.Fatal(err)
	}
	ref, err := Decode(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := samePacket(ref, &p); err != nil {
		t.Fatalf("reused struct diverges from fresh decode: %v", err)
	}
}

// TestDecodeIntoAllocs is the local allocation-regression gate: the hot-path
// decoder must not allocate once the packet struct's option capacity has
// warmed up. The CI bench job enforces the same floor via benchcheck.sh;
// this test fails plain `go test` so regressions never reach CI.
func TestDecodeIntoAllocs(t *testing.T) {
	syn := samplePacket()
	syn.TCP.Flags = FlagSYN
	syn.TCP.SetMSS(1460)
	syn.TCP.Options = append(syn.TCP.Options, TCPOption{Kind: OptWindowScale, Data: []byte{7}})
	frame, err := syn.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if err := DecodeInto(frame, &p); err != nil { // warm the option capacity
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(frame, &p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeInto allocates %.1f times per packet, want 0", n)
	}
}

// BenchmarkDecodeInto is the decode microbenchmark the CI perf gate parses:
// scripts/benchfloor.txt pins its allocs/op to 0.
func BenchmarkDecodeInto(b *testing.B) {
	frame, err := samplePacket().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	var p Packet
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(frame, &p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeReference prices the retained copying decoder for the
// BENCH_speed.json trajectory (the old hot path).
func BenchmarkDecodeReference(b *testing.B) {
	frame, err := samplePacket().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

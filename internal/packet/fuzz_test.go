package packet

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics drives the decoder with random and mutated frames:
// whatever tcpdump hands the analyzer, Decode must return an error rather
// than crash (trace files in the wild contain every kind of corruption).
func TestDecodeNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	good, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		var frame []byte
		switch i % 3 {
		case 0: // pure noise
			frame = make([]byte, rnd.Intn(200))
			rnd.Read(frame)
		case 1: // mutated valid frame
			frame = append([]byte(nil), good...)
			for j := 0; j < 1+rnd.Intn(8); j++ {
				frame[rnd.Intn(len(frame))] ^= byte(1 << rnd.Intn(8))
			}
		default: // truncated valid frame
			frame = good[:rnd.Intn(len(good))]
		}
		// The only contract under corruption: no panic.
		_, _ = Decode(frame)
	}
}

package packet

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanics drives the decoder with random and mutated frames:
// whatever tcpdump hands the analyzer, Decode must return an error rather
// than crash (trace files in the wild contain every kind of corruption).
func TestDecodeNeverPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	good, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		var frame []byte
		switch i % 3 {
		case 0: // pure noise
			frame = make([]byte, rnd.Intn(200))
			rnd.Read(frame)
		case 1: // mutated valid frame
			frame = append([]byte(nil), good...)
			for j := 0; j < 1+rnd.Intn(8); j++ {
				frame[rnd.Intn(len(frame))] ^= byte(1 << rnd.Intn(8))
			}
		default: // truncated valid frame
			frame = good[:rnd.Intn(len(good))]
		}
		// The only contract under corruption: no panic.
		_, _ = Decode(frame)
	}
}

// FuzzDecode is the native fuzz target behind TestDecodeNeverPanics:
// whatever frame bytes tcpdump hands the analyzer must decode or error,
// never crash, and a frame that decodes and re-marshals must decode again.
// CI runs this for a short smoke window on every push; run locally with
//
//	go test -run='^$' -fuzz=FuzzDecode -fuzztime=30s ./internal/packet
func FuzzDecode(f *testing.F) {
	good, err := samplePacket().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:14])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		p, err := Decode(frame)
		if err == nil && p != nil {
			if again, err := p.Marshal(); err == nil {
				if _, err := Decode(again); err != nil {
					t.Errorf("re-marshaled frame failed to decode: %v", err)
				}
			}
		}
	})
}

// FuzzDecodeEquiv is the differential target keeping the zero-copy decoder
// honest: on arbitrary input, DecodeInto and the retained reference decoder
// (Decode) must agree — same accept/reject verdict, same error text, and
// identical packets on acceptance (byte-slice fields compared by content,
// since the reference copies where the zero-copy decoder aliases the
// frame). The struct passed to DecodeInto is reused across inputs, so stale
// state leaking between decodes is also caught. Seeds come from the
// adversarial corpus (committed under testdata/fuzz/FuzzDecodeEquiv); CI
// runs a 30 s smoke window on every push:
//
//	go test -run='^$' -fuzz=FuzzDecodeEquiv -fuzztime=30s ./internal/packet
func FuzzDecodeEquiv(f *testing.F) {
	good, err := samplePacket().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:20])
	f.Add([]byte{})
	var zc Packet // reused across inputs, like the analyzer's hot loop
	f.Fuzz(func(t *testing.T, frame []byte) {
		ref, refErr := Decode(frame)
		zcErr := DecodeInto(frame, &zc)
		if (refErr == nil) != (zcErr == nil) {
			t.Fatalf("decoders disagree on acceptance: Decode err=%v, DecodeInto err=%v", refErr, zcErr)
		}
		if refErr != nil {
			if refErr.Error() != zcErr.Error() {
				t.Fatalf("decoders disagree on error: Decode %q, DecodeInto %q", refErr, zcErr)
			}
			return
		}
		if err := samePacket(ref, &zc); err != nil {
			t.Fatalf("decoders disagree on %x: %v", frame, err)
		}
	})
}

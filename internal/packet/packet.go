// Package packet encodes and decodes the link/network/transport headers used
// by the simulator and analyzer: Ethernet II, IPv4 (no options beyond
// header-length accounting), and TCP with the option kinds that matter to
// the analysis (MSS, window scale, SACK-permitted, timestamps).
//
// The simulator serializes synthetic packets through this package into pcap
// files, and the analyzer parses them back, so a decode(encode(p)) == p
// round-trip is the package's central invariant (property-tested).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Common errors returned by decoders.
var (
	ErrTruncated  = errors.New("packet: truncated")
	ErrBadVersion = errors.New("packet: unsupported IP version")
	ErrBadHeader  = errors.New("packet: malformed header")
)

// EtherTypeIPv4 is the Ethernet II type for IPv4 payloads.
const EtherTypeIPv4 = 0x0800

// EthernetHeaderLen is the length of an Ethernet II header without FCS.
const EthernetHeaderLen = 14

// MAC is a 6-byte link-layer address.
type MAC [6]byte

// String renders the address as colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// ProtoTCP is the IPv4 protocol number for TCP.
const ProtoTCP = 6

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is an IPv4 header (options are not modeled; IHL is fixed at 5).
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3-bit flags field (bit 1 = DF)
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
}

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// TCP option kinds handled explicitly.
const (
	OptEnd           = 0
	OptNOP           = 1
	OptMSS           = 2
	OptWindowScale   = 3
	OptSACKPermitted = 4
	OptSACK          = 5
	OptTimestamps    = 8
)

// TCPOption is a raw TCP option (kind + payload, excluding kind/len bytes).
type TCPOption struct {
	Kind uint8
	Data []byte
}

// TCP is a TCP header plus decoded convenience fields for common options.
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
	Options []TCPOption
}

// HasFlag reports whether all bits in mask are set.
func (t *TCP) HasFlag(mask uint8) bool { return t.Flags&mask == mask }

// FlagString renders flags like "SYN|ACK".
func (t *TCP) FlagString() string {
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "SYN"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	out := ""
	for _, n := range names {
		if t.Flags&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		out = "none"
	}
	return out
}

// MSS returns the MSS option value if present.
func (t *TCP) MSS() (uint16, bool) {
	for _, o := range t.Options {
		if o.Kind == OptMSS && len(o.Data) == 2 {
			return binary.BigEndian.Uint16(o.Data), true
		}
	}
	return 0, false
}

// WindowScale returns the window-scale shift if present.
func (t *TCP) WindowScale() (uint8, bool) {
	for _, o := range t.Options {
		if o.Kind == OptWindowScale && len(o.Data) == 1 {
			return o.Data[0], true
		}
	}
	return 0, false
}

// SetMSS appends an MSS option.
func (t *TCP) SetMSS(mss uint16) {
	data := make([]byte, 2)
	binary.BigEndian.PutUint16(data, mss)
	t.Options = append(t.Options, TCPOption{Kind: OptMSS, Data: data})
}

// HasOption reports whether an option of the given kind is present.
func (t *TCP) HasOption(kind uint8) bool {
	for _, o := range t.Options {
		if o.Kind == kind {
			return true
		}
	}
	return false
}

// SACKBlocks decodes the selective-acknowledgment option (RFC 2018) into
// [left, right) sequence-number edge pairs, nil if absent or malformed.
func (t *TCP) SACKBlocks() [][2]uint32 {
	for _, o := range t.Options {
		if o.Kind != OptSACK {
			continue
		}
		if len(o.Data) == 0 || len(o.Data)%8 != 0 {
			return nil
		}
		blocks := make([][2]uint32, 0, len(o.Data)/8)
		for i := 0; i+8 <= len(o.Data); i += 8 {
			blocks = append(blocks, [2]uint32{
				binary.BigEndian.Uint32(o.Data[i : i+4]),
				binary.BigEndian.Uint32(o.Data[i+4 : i+8]),
			})
		}
		return blocks
	}
	return nil
}

// SetSACKBlocks appends a SACK option carrying the given [left, right)
// edge pairs (at most 4 fit the option space; extras are dropped).
func (t *TCP) SetSACKBlocks(blocks [][2]uint32) {
	if len(blocks) == 0 {
		return
	}
	if len(blocks) > 4 {
		blocks = blocks[:4]
	}
	data := make([]byte, 0, len(blocks)*8)
	var edge [4]byte
	for _, b := range blocks {
		binary.BigEndian.PutUint32(edge[:], b[0])
		data = append(data, edge[:]...)
		binary.BigEndian.PutUint32(edge[:], b[1])
		data = append(data, edge[:]...)
	}
	t.Options = append(t.Options, TCPOption{Kind: OptSACK, Data: data})
}

// headerLen returns the TCP header length in bytes including padded options.
func (t *TCP) headerLen() int {
	optLen := 0
	for _, o := range t.Options {
		switch o.Kind {
		case OptEnd, OptNOP:
			optLen++
		default:
			optLen += 2 + len(o.Data)
		}
	}
	// Pad to a 4-byte boundary.
	return 20 + (optLen+3)/4*4
}

// Packet is a fully decoded Ethernet/IPv4/TCP packet with payload.
type Packet struct {
	Ether   Ethernet
	IP      IPv4
	TCP     TCP
	Payload []byte
}

// PayloadLen returns the TCP payload length in bytes.
func (p *Packet) PayloadLen() int { return len(p.Payload) }

// WireLen returns the frame's on-the-wire size in bytes without
// marshaling: Ethernet + IPv4 + TCP header (with padded options) + payload.
func (p *Packet) WireLen() int {
	return EthernetHeaderLen + IPv4HeaderLen + p.TCP.headerLen() + len(p.Payload)
}

// SeqEnd returns the sequence number after this segment, accounting for the
// SYN and FIN flags each consuming one sequence number.
func (p *Packet) SeqEnd() uint32 {
	end := p.TCP.Seq + uint32(len(p.Payload))
	if p.TCP.HasFlag(FlagSYN) {
		end++
	}
	if p.TCP.HasFlag(FlagFIN) {
		end++
	}
	return end
}

// Marshal serializes the packet to wire format (Ethernet II frame bytes).
func (p *Packet) Marshal() ([]byte, error) {
	if !p.IP.Src.Is4() || !p.IP.Dst.Is4() {
		return nil, fmt.Errorf("%w: non-IPv4 address", ErrBadHeader)
	}
	tcpLen := p.TCP.headerLen()
	ipTotal := IPv4HeaderLen + tcpLen + len(p.Payload)
	if ipTotal > 0xFFFF {
		return nil, fmt.Errorf("%w: IP total length %d exceeds 65535", ErrBadHeader, ipTotal)
	}
	buf := make([]byte, EthernetHeaderLen+ipTotal)

	// Ethernet.
	copy(buf[0:6], p.Ether.Dst[:])
	copy(buf[6:12], p.Ether.Src[:])
	et := p.Ether.EtherType
	if et == 0 {
		et = EtherTypeIPv4
	}
	binary.BigEndian.PutUint16(buf[12:14], et)

	// IPv4.
	ip := buf[EthernetHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = p.IP.TOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	binary.BigEndian.PutUint16(ip[4:6], p.IP.ID)
	binary.BigEndian.PutUint16(ip[6:8], uint16(p.IP.Flags)<<13|p.IP.FragOff&0x1FFF)
	ttl := p.IP.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = ProtoTCP
	src := p.IP.Src.As4()
	dst := p.IP.Dst.As4()
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip[:IPv4HeaderLen]))

	// TCP.
	tcp := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], p.TCP.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], p.TCP.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], p.TCP.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], p.TCP.Ack)
	tcp[12] = uint8(tcpLen/4) << 4
	tcp[13] = p.TCP.Flags
	binary.BigEndian.PutUint16(tcp[14:16], p.TCP.Window)
	binary.BigEndian.PutUint16(tcp[18:20], p.TCP.Urgent)
	off := 20
	for _, o := range p.TCP.Options {
		switch o.Kind {
		case OptEnd, OptNOP:
			tcp[off] = o.Kind
			off++
		default:
			tcp[off] = o.Kind
			tcp[off+1] = uint8(2 + len(o.Data))
			copy(tcp[off+2:], o.Data)
			off += 2 + len(o.Data)
		}
	}
	for off < tcpLen {
		tcp[off] = OptEnd
		off++
	}
	copy(tcp[tcpLen:], p.Payload)
	binary.BigEndian.PutUint16(tcp[16:18], tcpChecksum(src, dst, tcp[:tcpLen+len(p.Payload)]))
	return buf, nil
}

// Decode parses an Ethernet II frame carrying IPv4/TCP. Frames with other
// ether types or IP protocols return ErrBadHeader; short frames return
// ErrTruncated.
func Decode(frame []byte) (*Packet, error) {
	if len(frame) < EthernetHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes for Ethernet header", ErrTruncated, len(frame))
	}
	var p Packet
	copy(p.Ether.Dst[:], frame[0:6])
	copy(p.Ether.Src[:], frame[6:12])
	p.Ether.EtherType = binary.BigEndian.Uint16(frame[12:14])
	if p.Ether.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("%w: ether type 0x%04x", ErrBadHeader, p.Ether.EtherType)
	}

	ip := frame[EthernetHeaderLen:]
	if len(ip) < IPv4HeaderLen {
		return nil, fmt.Errorf("%w: %d bytes for IPv4 header", ErrTruncated, len(ip))
	}
	if v := ip[0] >> 4; v != 4 {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return nil, fmt.Errorf("%w: IHL %d", ErrBadHeader, ihl)
	}
	p.IP.TOS = ip[1]
	p.IP.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	p.IP.ID = binary.BigEndian.Uint16(ip[4:6])
	ff := binary.BigEndian.Uint16(ip[6:8])
	p.IP.Flags = uint8(ff >> 13)
	p.IP.FragOff = ff & 0x1FFF
	p.IP.TTL = ip[8]
	p.IP.Protocol = ip[9]
	p.IP.Src = netip.AddrFrom4([4]byte(ip[12:16]))
	p.IP.Dst = netip.AddrFrom4([4]byte(ip[16:20]))
	if p.IP.Protocol != ProtoTCP {
		return nil, fmt.Errorf("%w: IP protocol %d", ErrBadHeader, p.IP.Protocol)
	}
	if int(p.IP.TotalLen) < ihl || int(p.IP.TotalLen) > len(ip) {
		return nil, fmt.Errorf("%w: IP total length %d vs %d captured", ErrTruncated, p.IP.TotalLen, len(ip))
	}

	tcp := ip[ihl:p.IP.TotalLen]
	if len(tcp) < 20 {
		return nil, fmt.Errorf("%w: %d bytes for TCP header", ErrTruncated, len(tcp))
	}
	p.TCP.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	p.TCP.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	p.TCP.Seq = binary.BigEndian.Uint32(tcp[4:8])
	p.TCP.Ack = binary.BigEndian.Uint32(tcp[8:12])
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < 20 || dataOff > len(tcp) {
		return nil, fmt.Errorf("%w: TCP data offset %d", ErrBadHeader, dataOff)
	}
	p.TCP.Flags = tcp[13]
	p.TCP.Window = binary.BigEndian.Uint16(tcp[14:16])
	p.TCP.Urgent = binary.BigEndian.Uint16(tcp[18:20])
	opts := tcp[20:dataOff]
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEnd:
			opts = nil
		case OptNOP:
			p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: OptNOP})
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return nil, fmt.Errorf("%w: dangling TCP option kind %d", ErrBadHeader, kind)
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return nil, fmt.Errorf("%w: TCP option kind %d length %d", ErrBadHeader, kind, olen)
			}
			data := make([]byte, olen-2)
			copy(data, opts[2:olen])
			p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: kind, Data: data})
			opts = opts[olen:]
		}
	}
	p.Payload = append([]byte(nil), tcp[dataOff:]...)
	return &p, nil
}

// DecodeInto parses an Ethernet II frame carrying IPv4/TCP into a
// caller-provided struct without allocating: the TCP option Data fields and
// the Payload are typed views into frame (no copies), and the Options slice
// reuses p's existing backing array. It is the analyzer's hot-path decoder
// — zero allocations per packet once p's option capacity has warmed up
// (enforced by TestDecodeIntoAllocs and the CI bench gate).
//
// Buffer ownership: every byte-slice field of p aliases frame, so p is only
// valid while frame's contents are. Callers that reuse the frame buffer
// (pcapio.Reader.ReadInto, the sharded ingest batches) must consume or copy
// what they need from p before the next read; the flows demuxer does this
// by copying payload bytes into its per-connection arena. Callers that need
// a self-contained packet use Decode, which copies.
//
// Decode is retained verbatim as the reference decoder: FuzzDecodeEquiv
// asserts both decoders accept the same inputs and produce identical
// structs (up to the view-vs-copy distinction) on arbitrary bytes.
func DecodeInto(frame []byte, p *Packet) error {
	if len(frame) < EthernetHeaderLen {
		return fmt.Errorf("%w: %d bytes for Ethernet header", ErrTruncated, len(frame))
	}
	copy(p.Ether.Dst[:], frame[0:6])
	copy(p.Ether.Src[:], frame[6:12])
	p.Ether.EtherType = binary.BigEndian.Uint16(frame[12:14])
	if p.Ether.EtherType != EtherTypeIPv4 {
		return fmt.Errorf("%w: ether type 0x%04x", ErrBadHeader, p.Ether.EtherType)
	}

	ip := frame[EthernetHeaderLen:]
	if len(ip) < IPv4HeaderLen {
		return fmt.Errorf("%w: %d bytes for IPv4 header", ErrTruncated, len(ip))
	}
	if v := ip[0] >> 4; v != 4 {
		return fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return fmt.Errorf("%w: IHL %d", ErrBadHeader, ihl)
	}
	p.IP.TOS = ip[1]
	p.IP.TotalLen = binary.BigEndian.Uint16(ip[2:4])
	p.IP.ID = binary.BigEndian.Uint16(ip[4:6])
	ff := binary.BigEndian.Uint16(ip[6:8])
	p.IP.Flags = uint8(ff >> 13)
	p.IP.FragOff = ff & 0x1FFF
	p.IP.TTL = ip[8]
	p.IP.Protocol = ip[9]
	p.IP.Src = netip.AddrFrom4([4]byte(ip[12:16]))
	p.IP.Dst = netip.AddrFrom4([4]byte(ip[16:20]))
	if p.IP.Protocol != ProtoTCP {
		return fmt.Errorf("%w: IP protocol %d", ErrBadHeader, p.IP.Protocol)
	}
	if int(p.IP.TotalLen) < ihl || int(p.IP.TotalLen) > len(ip) {
		return fmt.Errorf("%w: IP total length %d vs %d captured", ErrTruncated, p.IP.TotalLen, len(ip))
	}

	tcp := ip[ihl:p.IP.TotalLen]
	if len(tcp) < 20 {
		return fmt.Errorf("%w: %d bytes for TCP header", ErrTruncated, len(tcp))
	}
	p.TCP.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	p.TCP.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	p.TCP.Seq = binary.BigEndian.Uint32(tcp[4:8])
	p.TCP.Ack = binary.BigEndian.Uint32(tcp[8:12])
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < 20 || dataOff > len(tcp) {
		return fmt.Errorf("%w: TCP data offset %d", ErrBadHeader, dataOff)
	}
	p.TCP.Flags = tcp[13]
	p.TCP.Window = binary.BigEndian.Uint16(tcp[14:16])
	p.TCP.Urgent = binary.BigEndian.Uint16(tcp[18:20])
	p.TCP.Options = p.TCP.Options[:0]
	opts := tcp[20:dataOff]
	for len(opts) > 0 {
		kind := opts[0]
		switch kind {
		case OptEnd:
			opts = nil
		case OptNOP:
			p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: OptNOP})
			opts = opts[1:]
		default:
			if len(opts) < 2 {
				return fmt.Errorf("%w: dangling TCP option kind %d", ErrBadHeader, kind)
			}
			olen := int(opts[1])
			if olen < 2 || olen > len(opts) {
				return fmt.Errorf("%w: TCP option kind %d length %d", ErrBadHeader, kind, olen)
			}
			p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: kind, Data: opts[2:olen:olen]})
			opts = opts[olen:]
		}
	}
	p.Payload = tcp[dataOff:len(tcp):len(tcp)]
	return nil
}

// checksum computes the standard Internet checksum over data.
func checksum(data []byte) uint16 {
	var sum uint32
	// The checksum field itself must be zeroed by the caller before calling.
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum with the IPv4 pseudo-header. The
// segment's checksum field (bytes 16:18) must be zero on entry; it is
// summed as part of seg, so callers zero it before calling.
func tcpChecksum(src, dst [4]byte, seg []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = ProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(seg)))
	var sum uint32
	add := func(data []byte) {
		for i := 0; i+1 < len(data); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
		}
		if len(data)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
		}
	}
	add(pseudo[:])
	add(seg)
	for sum > 0xFFFF {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPChecksum recomputes and checks the IPv4 header checksum of a
// marshaled frame. Used by tests and the analyzer's trace sanity pass.
func VerifyIPChecksum(frame []byte) bool {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return false
	}
	ip := frame[EthernetHeaderLen:]
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return false
	}
	return checksum(ip[:ihl]) == 0
}

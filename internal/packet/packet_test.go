package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		Ether: Ethernet{
			Dst:       MAC{0x02, 0, 0, 0, 0, 2},
			Src:       MAC{0x02, 0, 0, 0, 0, 1},
			EtherType: EtherTypeIPv4,
		},
		IP: IPv4{
			ID:       1234,
			TTL:      64,
			Protocol: ProtoTCP,
			Src:      netip.MustParseAddr("10.0.0.1"),
			Dst:      netip.MustParseAddr("10.0.0.2"),
		},
		TCP: TCP{
			SrcPort: 179,
			DstPort: 41000,
			Seq:     1000,
			Ack:     2000,
			Flags:   FlagACK | FlagPSH,
			Window:  65535,
		},
		Payload: []byte("hello bgp"),
	}
}

func TestMarshalDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	p.TCP.SetMSS(1460)
	frame, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !VerifyIPChecksum(frame) {
		t.Error("IP checksum does not verify")
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.TCP.SrcPort != 179 || got.TCP.DstPort != 41000 {
		t.Errorf("ports = %d,%d", got.TCP.SrcPort, got.TCP.DstPort)
	}
	if got.TCP.Seq != 1000 || got.TCP.Ack != 2000 {
		t.Errorf("seq/ack = %d/%d", got.TCP.Seq, got.TCP.Ack)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q, want %q", got.Payload, p.Payload)
	}
	if got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst {
		t.Errorf("addrs = %v->%v", got.IP.Src, got.IP.Dst)
	}
	mss, ok := got.TCP.MSS()
	if !ok || mss != 1460 {
		t.Errorf("MSS = %d,%v want 1460,true", mss, ok)
	}
	if got.Ether.Src != p.Ether.Src || got.Ether.Dst != p.Ether.Dst {
		t.Errorf("MACs = %v->%v", got.Ether.Src, got.Ether.Dst)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Marshal then Decode preserves all header fields and payload
	// for arbitrary field values.
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := samplePacket()
		p.TCP.Seq = rnd.Uint32()
		p.TCP.Ack = rnd.Uint32()
		p.TCP.Window = uint16(rnd.Uint32())
		p.TCP.Flags = uint8(rnd.Intn(64))
		p.IP.ID = uint16(rnd.Uint32())
		p.Payload = make([]byte, rnd.Intn(1400))
		rnd.Read(p.Payload)
		frame, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return got.TCP.Seq == p.TCP.Seq &&
			got.TCP.Ack == p.TCP.Ack &&
			got.TCP.Window == p.TCP.Window &&
			got.TCP.Flags == p.TCP.Flags &&
			got.IP.ID == p.IP.ID &&
			bytes.Equal(got.Payload, p.Payload) &&
			VerifyIPChecksum(frame)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := samplePacket().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short ethernet", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"short ip", func(b []byte) []byte { return b[:EthernetHeaderLen+8] }, ErrTruncated},
		{"wrong ethertype", func(b []byte) []byte { b[12] = 0x86; b[13] = 0xDD; return b }, ErrBadHeader},
		{"ip version 6", func(b []byte) []byte { b[EthernetHeaderLen] = 0x65; return b }, ErrBadVersion},
		{"not tcp", func(b []byte) []byte { b[EthernetHeaderLen+9] = 17; return b }, ErrBadHeader},
		{"bad ihl", func(b []byte) []byte { b[EthernetHeaderLen] = 0x42; return b }, ErrBadHeader},
		{
			"total len beyond capture",
			func(b []byte) []byte { b[EthernetHeaderLen+2] = 0xFF; b[EthernetHeaderLen+3] = 0xFF; return b },
			ErrTruncated,
		},
		{
			"tcp offset beyond segment",
			func(b []byte) []byte { b[EthernetHeaderLen+IPv4HeaderLen+12] = 0xF0; return b },
			ErrBadHeader,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frame := tt.mangle(append([]byte(nil), good...))
			_, err := Decode(frame)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Decode error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestSeqEnd(t *testing.T) {
	tests := []struct {
		name    string
		flags   uint8
		payload int
		want    uint32
	}{
		{"plain data", FlagACK, 100, 1100},
		{"syn consumes one", FlagSYN, 0, 1001},
		{"fin consumes one", FlagFIN | FlagACK, 50, 1051},
		{"syn+fin", FlagSYN | FlagFIN, 0, 1002},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := &Packet{TCP: TCP{Seq: 1000, Flags: tt.flags}, Payload: make([]byte, tt.payload)}
			if got := p.SeqEnd(); got != tt.want {
				t.Errorf("SeqEnd = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestOptionsRoundTrip(t *testing.T) {
	p := samplePacket()
	p.TCP.Flags = FlagSYN
	p.TCP.SetMSS(536)
	p.TCP.Options = append(p.TCP.Options,
		TCPOption{Kind: OptNOP},
		TCPOption{Kind: OptWindowScale, Data: []byte{7}},
		TCPOption{Kind: OptSACKPermitted},
	)
	frame, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	mss, ok := got.TCP.MSS()
	if !ok || mss != 536 {
		t.Errorf("MSS = %d,%v", mss, ok)
	}
	ws, ok := got.TCP.WindowScale()
	if !ok || ws != 7 {
		t.Errorf("WindowScale = %d,%v", ws, ok)
	}
}

func TestFlagString(t *testing.T) {
	tcp := &TCP{Flags: FlagSYN | FlagACK}
	if got := tcp.FlagString(); got != "SYN|ACK" {
		t.Errorf("FlagString = %q", got)
	}
	if got := (&TCP{}).FlagString(); got != "none" {
		t.Errorf("FlagString empty = %q", got)
	}
}

func TestHasFlag(t *testing.T) {
	tcp := &TCP{Flags: FlagSYN | FlagACK}
	if !tcp.HasFlag(FlagSYN) || !tcp.HasFlag(FlagSYN|FlagACK) {
		t.Error("HasFlag missed set flags")
	}
	if tcp.HasFlag(FlagRST) || tcp.HasFlag(FlagSYN|FlagRST) {
		t.Error("HasFlag matched unset flags")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xAA, 0xBB, 0xCC, 0x00, 0x11, 0x22}
	if got := m.String(); got != "aa:bb:cc:00:11:22" {
		t.Errorf("MAC.String = %q", got)
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	p := samplePacket()
	p.Payload = make([]byte, 70000)
	if _, err := p.Marshal(); !errors.Is(err, ErrBadHeader) {
		t.Errorf("Marshal oversize err = %v, want ErrBadHeader", err)
	}
}

func TestHasOption(t *testing.T) {
	p := samplePacket()
	if p.TCP.HasOption(OptSACKPermitted) {
		t.Error("HasOption true on empty option list")
	}
	p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: OptSACKPermitted})
	if !p.TCP.HasOption(OptSACKPermitted) {
		t.Error("HasOption missed SACK-permitted")
	}
	if p.TCP.HasOption(OptWindowScale) {
		t.Error("HasOption matched absent kind")
	}
}

func TestSACKBlocksRoundTrip(t *testing.T) {
	p := samplePacket()
	want := [][2]uint32{{1000, 2000}, {5000, 6448}, {9000, 9001}}
	p.TCP.SetSACKBlocks(want)
	frame, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	blocks := got.TCP.SACKBlocks()
	if len(blocks) != len(want) {
		t.Fatalf("SACKBlocks = %v, want %v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("block %d = %v, want %v", i, blocks[i], want[i])
		}
	}
}

func TestSACKBlocksEdgeCases(t *testing.T) {
	var tcp TCP
	if got := tcp.SACKBlocks(); got != nil {
		t.Errorf("SACKBlocks on no options = %v", got)
	}
	tcp.SetSACKBlocks(nil)
	if len(tcp.Options) != 0 {
		t.Error("SetSACKBlocks(nil) appended an option")
	}
	// Five blocks exceed the option space; only four survive.
	tcp.SetSACKBlocks([][2]uint32{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}})
	if got := tcp.SACKBlocks(); len(got) != 4 || got[3] != [2]uint32{7, 8} {
		t.Errorf("truncated SACKBlocks = %v, want 4 blocks ending {7 8}", got)
	}
	// Malformed length (not a multiple of 8) decodes to nil.
	bad := TCP{Options: []TCPOption{{Kind: OptSACK, Data: make([]byte, 12)}}}
	if got := bad.SACKBlocks(); got != nil {
		t.Errorf("malformed SACK data decoded to %v", got)
	}
}

func TestPayloadAndWireLen(t *testing.T) {
	p := samplePacket()
	if got := p.PayloadLen(); got != len(p.Payload) {
		t.Errorf("PayloadLen = %d, want %d", got, len(p.Payload))
	}
	frame, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WireLen(); got != len(frame) {
		t.Errorf("WireLen = %d, marshaled frame is %d bytes", got, len(frame))
	}
	p.TCP.SetSACKBlocks([][2]uint32{{1, 2}})
	frame, err = p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WireLen(); got != len(frame) {
		t.Errorf("WireLen with SACK option = %d, frame is %d bytes", got, len(frame))
	}
}
